"""Export profiles in the (real) callgrind file format.

Sigil is built on Callgrind, and its ecosystem views profiles in
KCachegrind/QCacheGrind; this exporter writes our profiles in the callgrind
format (https://valgrind.org/docs/manual/cl-format.html) so they open in
those tools unmodified.

Two flavours:

* :func:`export_callgrind` — the Callgrind-equivalent's cost events
  (``Ir Dr Dw L1m LLm Bc Bm``) with the full call graph and inclusive call
  costs.
* :func:`export_sigil` — Sigil's communication metrics as synthetic events
  (``Ops UniqIn UniqOut Local NonUniqIn``), letting the calltree browser
  navigate *communication* the way it usually navigates cycles.

Calling contexts are flattened to functions (the format attributes costs to
``fn=`` entries); context sensitivity survives through the call graph
(``cfn=``/``calls=`` records), which is exactly how Callgrind itself emits
cycle-context data.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Tuple, Union

from repro.callgrind.collector import CallgrindProfile
from repro.common.cct import ContextNode
from repro.core.profiler import SigilProfile

__all__ = ["export_callgrind", "export_sigil"]


def _flat_name(node: ContextNode) -> str:
    return node.name


def _emit_header(events: str, command: str) -> List[str]:
    return [
        "# callgrind format",
        "version: 1",
        "creator: repro-sigil 1.0",
        f"cmd: {command}",
        "part: 1",
        "",
        f"events: {events}",
        "",
    ]


def export_callgrind(
    profile: CallgrindProfile, path: Union[str, Path], *, command: str = "repro"
) -> None:
    """Write a CallgrindProfile as a callgrind-format file."""
    lines = _emit_header("Ir Dr Dw L1m LLm Bc Bm", command)
    for node in profile.tree.nodes:
        if node.parent is None:
            continue
        costs = profile.self_costs.get(node.id)
        lines.append(f"fn={_flat_name(node)}")
        if costs is not None:
            lines.append(
                f"0 {costs.instructions} {costs.reads} {costs.writes} "
                f"{costs.l1_misses} {costs.ll_misses} {costs.branches} "
                f"{costs.branch_misses}"
            )
        else:
            lines.append("0 0 0 0 0 0 0 0")
        for child in node.children.values():
            inc = profile.inclusive_costs(child)
            lines.append(f"cfn={_flat_name(child)}")
            lines.append(f"calls={max(child.calls, 1)} 0")
            lines.append(
                f"0 {inc.instructions} {inc.reads} {inc.writes} "
                f"{inc.l1_misses} {inc.ll_misses} {inc.branches} "
                f"{inc.branch_misses}"
            )
        lines.append("")
    Path(path).write_text("\n".join(lines) + "\n")


def _sigil_cost_vector(profile: SigilProfile, ctx_id: int) -> Tuple[int, ...]:
    comm = profile.fn_comm(ctx_id)
    nonuniq_in = sum(
        e.nonunique_bytes for e in profile.comm.input_edges(ctx_id).values()
    )
    return (
        comm.ops,
        profile.unique_input_bytes(ctx_id),
        profile.unique_output_bytes(ctx_id),
        profile.unique_local_bytes(ctx_id),
        nonuniq_in,
    )


def export_sigil(
    profile: SigilProfile, path: Union[str, Path], *, command: str = "repro"
) -> None:
    """Write a SigilProfile's communication metrics as a callgrind file."""
    lines = _emit_header("Ops UniqIn UniqOut Local NonUniqIn", command)
    # Inclusive communication for call records: sum the subtree's vectors.
    cache: Dict[int, Tuple[int, ...]] = {}

    def inclusive(node: ContextNode) -> Tuple[int, ...]:
        cached = cache.get(node.id)
        if cached is None:
            total = list(_sigil_cost_vector(profile, node.id))
            for child in node.children.values():
                for i, v in enumerate(inclusive(child)):
                    total[i] += v
            cached = tuple(total)
            cache[node.id] = cached
        return cached

    for node in profile.tree.nodes:
        if node.parent is None:
            continue
        vector = _sigil_cost_vector(profile, node.id)
        lines.append(f"fn={_flat_name(node)}")
        lines.append("0 " + " ".join(str(v) for v in vector))
        for child in node.children.values():
            lines.append(f"cfn={_flat_name(child)}")
            lines.append(f"calls={max(child.calls, 1)} 0")
            lines.append("0 " + " ".join(str(v) for v in inclusive(child)))
        lines.append("")
    Path(path).write_text("\n".join(lines) + "\n")
