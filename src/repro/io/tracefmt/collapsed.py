"""Collapsed-stack flamegraph export from a Sigil calling-context tree.

The collapsed ("folded") format -- one ``frame;frame;frame weight`` line per
stack -- is the lingua franca of flamegraph tooling: speedscope and Brendan
Gregg's ``flamegraph.pl`` both read it directly.  Each calling context of
the CCT contributes one stack (its path of function names from the entry
point) carrying a *self* weight, so inclusive weights emerge from the
renderer's own stacking, exactly as with sampled profiles.

The weight axis is selectable, mirroring the paper's communication metrics
rather than just time:

==============  ============================================================
``ops``         operations retired in the context (section II-A self cost)
``unique_in``   unique input bytes -- first-time reads from other contexts
``unique_out``  unique output bytes -- bytes other contexts first-read
``local``       unique bytes produced and consumed by the context itself
``comm``        ``unique_in + unique_out``: the offload volume behind the
                breakeven-speedup denominator t_comm:ip + t_comm:op (Eq. 1)
==============  ============================================================

Weights are exact byte/op counts, so a flamegraph in ``unique_in`` sums to
the profile's total unique input bytes.
"""

from __future__ import annotations

from pathlib import Path
from typing import Callable, Dict, List, Union

from repro.core.profiler import SigilProfile

__all__ = ["COLLAPSED_WEIGHTS", "profile_to_collapsed", "dumps_collapsed", "dump_collapsed"]


def _w_ops(profile: SigilProfile, ctx_id: int) -> int:
    return profile.fn_comm(ctx_id).ops


def _w_unique_in(profile: SigilProfile, ctx_id: int) -> int:
    return profile.unique_input_bytes(ctx_id)


def _w_unique_out(profile: SigilProfile, ctx_id: int) -> int:
    return profile.unique_output_bytes(ctx_id)


def _w_local(profile: SigilProfile, ctx_id: int) -> int:
    return profile.unique_local_bytes(ctx_id)


def _w_comm(profile: SigilProfile, ctx_id: int) -> int:
    return profile.unique_input_bytes(ctx_id) + profile.unique_output_bytes(ctx_id)


#: weight name -> (profile, ctx_id) -> integer self weight
COLLAPSED_WEIGHTS: Dict[str, Callable[[SigilProfile, int], int]] = {
    "ops": _w_ops,
    "unique_in": _w_unique_in,
    "unique_out": _w_unique_out,
    "local": _w_local,
    "comm": _w_comm,
}


def profile_to_collapsed(profile: SigilProfile, weight: str = "ops") -> str:
    """Render a profile's CCT as collapsed-stack text under ``weight``.

    Zero-weight contexts are omitted (the flamegraph convention); frame
    names are the context's path of function names joined by ``;``.
    """
    try:
        weigh = COLLAPSED_WEIGHTS[weight]
    except KeyError:
        raise ValueError(
            f"unknown weight {weight!r}; choose from "
            f"{', '.join(sorted(COLLAPSED_WEIGHTS))}"
        ) from None
    lines: List[str] = []
    for node in profile.contexts():
        value = weigh(profile, node.id)
        if value > 0:
            lines.append(f"{';'.join(node.path)} {value}")
    return "\n".join(lines) + ("\n" if lines else "")


def dumps_collapsed(profile: SigilProfile, weight: str = "ops") -> str:
    """Alias of :func:`profile_to_collapsed` matching the io naming scheme."""
    return profile_to_collapsed(profile, weight)


def dump_collapsed(
    profile: SigilProfile, path: Union[str, Path], weight: str = "ops"
) -> None:
    """Write the collapsed-stack rendering of ``profile`` to ``path``."""
    Path(path).write_text(profile_to_collapsed(profile, weight))
