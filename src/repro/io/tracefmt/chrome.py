"""Chrome trace-event JSON export (Perfetto / ``chrome://tracing``).

One JSON array of ``ph``-keyed event dicts, per the trace-event format
(https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU):

* every compute :class:`~repro.core.segments.Segment` becomes a complete
  duration event (``ph: "X"``) on a per-context track (``tid`` = context id)
  inside a per-virtual-thread process (``pid`` = thread + ``pid_base``);
* every ``data`` edge becomes a flow-event pair (``ph: "s"`` at the
  producing segment's end, ``ph: "f"`` at the consuming segment's start)
  whose ``args.bytes`` carries the unique byte count;
* counter tracks (``ph: "C"``) chart cumulative transferred unique bytes
  and cumulative retired operations over segment time;
* :mod:`repro.telemetry` phase timers become duration events in a separate
  ``pid`` (:data:`PIPELINE_PID`), so one Perfetto view shows the
  reproduction's own setup/execute/aggregate phases alongside the profiled
  workload's segments.

Timestamps are microseconds by convention; workload tracks use the paper's
retired-instruction clock one-for-one ("an architecture-independent proxy
for execution time", section IV-B), pipeline tracks use wall seconds scaled
to microseconds.  A segment's duration is the operations attributed to the
fragment, so preempted fragments draw their attributed cost, not their wall
extent.  Non-unique traffic never appears: re-reads create no new
dependency, so the event log records only unique transfers (section II-B).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

from repro.common.cct import ContextTree
from repro.core.segments import EDGE_DATA, EventLog

__all__ = [
    "PIPELINE_PID",
    "events_to_chrome",
    "curves_to_chrome",
    "spans_to_chrome",
    "synthesize_spans",
    "manifest_to_chrome",
    "dumps_chrome",
    "dump_chrome",
]

#: Process id of the pipeline-phase tracks (workload threads start at 1).
PIPELINE_PID = 0

Span = Tuple[str, float, float]


def _ctx_label(tree: Optional[ContextTree], ctx_id: int) -> str:
    if tree is not None and 0 <= ctx_id < len(tree.nodes):
        node = tree.node(ctx_id)
        return node.name if node.parent is not None else "<root>"
    return f"ctx{ctx_id}"


def events_to_chrome(
    events: EventLog,
    tree: Optional[ContextTree] = None,
    *,
    pid_base: int = 1,
) -> List[Dict[str, Any]]:
    """Render an event log as a list of Chrome trace events.

    Pass the run's :class:`~repro.common.cct.ContextTree` to label tracks
    with function names; without it tracks are named by context id (event
    files do not store names).  An empty log renders as an empty trace
    (``[]`` is valid Chrome trace JSON) rather than zero-sample counter
    tracks with no process metadata.
    """
    out: List[Dict[str, Any]] = []
    if not events.segments:
        return out
    threads = sorted({seg.thread for seg in events.segments})
    seen_tracks = set()
    for thread in threads:
        out.append({
            "ph": "M", "name": "process_name", "pid": pid_base + thread,
            "tid": 0, "args": {"name": f"workload thread {thread}"},
        })
    for seg in events.segments:
        track = (seg.thread, seg.ctx_id)
        if track not in seen_tracks:
            seen_tracks.add(track)
            out.append({
                "ph": "M", "name": "thread_name",
                "pid": pid_base + seg.thread, "tid": seg.ctx_id,
                "args": {"name": _ctx_label(tree, seg.ctx_id)},
            })
    for seg in events.segments:
        out.append({
            "ph": "X", "name": _ctx_label(tree, seg.ctx_id), "cat": "segment",
            "ts": seg.start_time, "dur": seg.ops,
            "pid": pid_base + seg.thread, "tid": seg.ctx_id,
            "args": {"seg": seg.seg_id, "call": seg.call_id, "ops": seg.ops},
        })
    data_edges = [e for e in events.edges() if e.kind == EDGE_DATA]
    # Flow arrows: producer's end -> consumer's start, one id per edge.
    for flow_id, edge in enumerate(data_edges, start=1):
        src = events.segments[edge.src]
        dst = events.segments[edge.dst]
        common = {"name": "data", "cat": "dataflow", "id": flow_id,
                  "args": {"bytes": edge.bytes, "src": edge.src, "dst": edge.dst}}
        out.append({
            "ph": "s", "ts": src.start_time + src.ops,
            "pid": pid_base + src.thread, "tid": src.ctx_id, **common,
        })
        out.append({
            "ph": "f", "bp": "e", "ts": dst.start_time,
            "pid": pid_base + dst.thread, "tid": dst.ctx_id, **common,
        })
    out.extend(_counter_events(events, data_edges, pid_base=pid_base))
    return out


def _counter_events(
    events: EventLog, data_edges: Sequence, *, pid_base: int
) -> List[Dict[str, Any]]:
    """Cumulative unique-byte and ops counter tracks over segment time."""
    out: List[Dict[str, Any]] = []

    def sample(name: str, ts: int, value: int) -> Dict[str, Any]:
        return {"ph": "C", "name": name, "pid": pid_base, "tid": 0,
                "ts": ts, "args": {name: value}}

    total = 0
    out.append(sample("unique bytes (cum)", 0, 0))
    for edge in sorted(data_edges, key=lambda e: events.segments[e.dst].start_time):
        total += edge.bytes
        out.append(sample(
            "unique bytes (cum)", events.segments[edge.dst].start_time, total
        ))
    ops = 0
    out.append(sample("ops (cum)", 0, 0))
    for seg in sorted(events.segments, key=lambda s: s.start_time + s.ops):
        if seg.ops:
            ops += seg.ops
            out.append(sample("ops (cum)", seg.start_time + seg.ops, ops))
    return out


# ---------------------------------------------------------------------------
# time-resolved curves (repro.analysis.windowed)
# ---------------------------------------------------------------------------


def curves_to_chrome(
    curves,
    *,
    pid: int = 1,
    include_cumulative: bool = True,
    process_name: Optional[str] = "workload timeline",
) -> List[Dict[str, Any]]:
    """Counter tracks for :class:`~repro.analysis.windowed.WindowedCurves`.

    One sample per window at the window's start timestamp (the paper's
    retired-ops clock): ``WS(t) bytes`` (live communicated bytes),
    ``comm bytes/window``, ``ops/window`` and ``mean reuse lifetime (ops)``.
    With ``include_cumulative`` the running integrals ``unique bytes (cum)``
    and ``ops (cum)`` ride along too, so a timeline-only trace still carries
    the tracks :func:`events_to_chrome` draws; pass ``False`` when combining
    with a full event trace to avoid near-duplicate tracks (and
    ``process_name=None`` to keep the event view's process labels).  An
    empty curve set renders as an empty trace.
    """
    n = curves.n_windows
    if n == 0:
        return []
    out: List[Dict[str, Any]] = []
    if process_name is not None:
        out.append(
            {"ph": "M", "name": "process_name", "pid": pid, "tid": 0,
             "args": {"name": process_name}}
        )

    def track(name: str, values) -> None:
        for k, value in enumerate(values):
            out.append({
                "ph": "C", "name": name, "pid": pid, "tid": 0,
                "ts": k * curves.window, "args": {name: value},
            })

    ws = curves.ws_bytes.tolist()
    comm = curves.comm_bytes.tolist()
    ops = curves.ops.tolist()
    life = [round(float(v), 3) for v in curves.mean_lifetime.tolist()]
    track("WS(t) bytes", ws)
    track("comm bytes/window", comm)
    track("ops/window", ops)
    track("mean reuse lifetime (ops)", life)
    if include_cumulative:
        track("unique bytes (cum)", list(_running_sum(comm)))
        track("ops (cum)", list(_running_sum(ops)))
    return out


def _running_sum(values):
    total = 0
    for v in values:
        total += v
        yield total


# ---------------------------------------------------------------------------
# pipeline phase spans
# ---------------------------------------------------------------------------


def synthesize_spans(phases: Mapping[str, float]) -> List[Span]:
    """Lay out a phase-seconds snapshot as ``(path, start, end)`` spans.

    Old manifests carry only accumulated seconds per phase path; this packs
    them into a plausible timeline: top-level phases run back to back in
    entry order, nested phases (``execute/replay``) are placed inside their
    parent, siblings back to back from the parent's start.
    """
    spans: List[Span] = []
    starts: Dict[str, float] = {"": 0.0}
    cursors: Dict[str, float] = {"": 0.0}
    for path, seconds in phases.items():
        parent = path.rsplit("/", 1)[0] if "/" in path else ""
        start = cursors.get(parent, starts.get(parent, 0.0))
        end = start + float(seconds)
        cursors[parent] = end
        starts[path] = start
        cursors.setdefault(path, start)
        spans.append((path, start, end))
    return spans


def spans_to_chrome(
    spans: Iterable[Span],
    *,
    pid: int = PIPELINE_PID,
    process_name: str = "repro pipeline",
) -> List[Dict[str, Any]]:
    """Render pipeline phase spans (wall seconds) as Chrome trace events."""
    out: List[Dict[str, Any]] = [
        {"ph": "M", "name": "process_name", "pid": pid, "tid": 0,
         "args": {"name": process_name}},
        {"ph": "M", "name": "thread_name", "pid": pid, "tid": 0,
         "args": {"name": "phases"}},
    ]
    for path, start, end in spans:
        out.append({
            "ph": "X", "name": path.rsplit("/", 1)[-1], "cat": "phase",
            "ts": round(start * 1e6, 3), "dur": round((end - start) * 1e6, 3),
            "pid": pid, "tid": 0, "args": {"path": path},
        })
    return out


def manifest_to_chrome(manifest) -> List[Dict[str, Any]]:
    """Pipeline trace of one :class:`~repro.telemetry.Manifest`.

    Uses the manifest's recorded spans when present (schema >= this PR),
    falling back to a synthesized layout of the phase-seconds dict for
    older files.
    """
    spans = manifest.phase_spans() or synthesize_spans(manifest.phases)
    label = f"repro pipeline ({manifest.workload}/{manifest.size})"
    return spans_to_chrome(spans, process_name=label)


# ---------------------------------------------------------------------------
# serialisation
# ---------------------------------------------------------------------------


def dumps_chrome(trace_events: List[Dict[str, Any]]) -> str:
    """Serialise trace events as the JSON array form of the format."""
    return json.dumps(trace_events, separators=(",", ":")) + "\n"


def dump_chrome(
    trace_events: List[Dict[str, Any]], path: Union[str, Path]
) -> None:
    """Write trace events to ``path`` (open the file in ui.perfetto.dev)."""
    Path(path).write_text(dumps_chrome(trace_events))
