"""Trace-export renderers: standard visual formats for Sigil output.

The paper's second output representation -- "the execution as a list of
function calls connected by data transfer edges" (section I) -- *is* a
timeline; this package renders it (and the reproduction's own pipeline
telemetry) in formats existing tools open unmodified:

* :mod:`repro.io.tracefmt.chrome` -- Chrome trace-event JSON, loadable in
  Perfetto (https://ui.perfetto.dev) and ``chrome://tracing``: compute
  segments as duration events on per-context tracks, ``data`` edges as flow
  arrows carrying byte counts, counter tracks for cumulative traffic, and
  pipeline phase spans from :mod:`repro.telemetry`.
* :mod:`repro.io.tracefmt.collapsed` -- collapsed-stack flamegraphs
  (speedscope / Brendan Gregg's ``flamegraph.pl``) from a
  :class:`~repro.core.profiler.SigilProfile` calling-context tree, weighted
  by ops or by the paper's communication byte classes.
"""

from repro.io.tracefmt.chrome import (
    PIPELINE_PID,
    curves_to_chrome,
    dump_chrome,
    dumps_chrome,
    events_to_chrome,
    manifest_to_chrome,
    spans_to_chrome,
    synthesize_spans,
)
from repro.io.tracefmt.collapsed import (
    COLLAPSED_WEIGHTS,
    dump_collapsed,
    dumps_collapsed,
    profile_to_collapsed,
)

__all__ = [
    "PIPELINE_PID",
    "curves_to_chrome",
    "dump_chrome",
    "dumps_chrome",
    "events_to_chrome",
    "manifest_to_chrome",
    "spans_to_chrome",
    "synthesize_spans",
    "COLLAPSED_WEIGHTS",
    "dump_collapsed",
    "dumps_collapsed",
    "profile_to_collapsed",
]
