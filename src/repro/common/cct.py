"""Calling-context tree (CCT) shared by the Callgrind observer and Sigil.

Both tools "keep separate accounting of costs for functions called through
different contexts" (paper, section III): costs are attributed not to a bare
function name but to a *context* -- the chain of function names from the root
of the run to the function.  Figure 2 relies on this (function D appears as
two nodes, D1 and D2, one per calling context).

A :class:`ContextNode` is one such context.  Node ids are dense small
integers, which lets tools keep per-context cost records in flat structures
and lets the shadow memory store "pointer to function" (Table I) as an int32.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

__all__ = ["ContextNode", "ContextTree", "ROOT_NAME", "INVALID_CTX"]

ROOT_NAME = "<root>"

#: Shadow-memory value meaning "no recorded function" (Table I: entries are
#: initialised to *invalid* until the corresponding byte is used).
INVALID_CTX = -1


class ContextNode:
    """One calling context: a function name plus the chain of its callers."""

    __slots__ = ("id", "name", "parent", "children", "calls", "depth")

    def __init__(self, node_id: int, name: str, parent: Optional["ContextNode"]):
        self.id = node_id
        self.name = name
        self.parent = parent
        self.children: Dict[str, ContextNode] = {}
        self.calls = 0
        self.depth = 0 if parent is None else parent.depth + 1

    @property
    def path(self) -> Tuple[str, ...]:
        """Function names from the root (exclusive) down to this node."""
        names: List[str] = []
        node: Optional[ContextNode] = self
        while node is not None and node.parent is not None:
            names.append(node.name)
            node = node.parent
        return tuple(reversed(names))

    def walk(self) -> Iterator["ContextNode"]:
        """Yield this node and all descendants, depth-first."""
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(node.children.values())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ContextNode(#{self.id} {'/'.join(self.path) or ROOT_NAME})"


class ContextTree:
    """Interns calling contexts and assigns dense ids."""

    def __init__(self) -> None:
        self.root = ContextNode(0, ROOT_NAME, None)
        self.nodes: List[ContextNode] = [self.root]

    def child(self, parent: ContextNode, name: str) -> ContextNode:
        """Get or create the context for ``name`` called from ``parent``."""
        node = parent.children.get(name)
        if node is None:
            node = ContextNode(len(self.nodes), name, parent)
            parent.children[name] = node
            self.nodes.append(node)
        return node

    def node(self, ctx_id: int) -> ContextNode:
        return self.nodes[ctx_id]

    def find(self, path: Tuple[str, ...]) -> Optional[ContextNode]:
        """Look up a context by its path of function names; None if absent."""
        node = self.root
        for name in path:
            nxt = node.children.get(name)
            if nxt is None:
                return None
            node = nxt
        return node

    def by_name(self, name: str) -> List[ContextNode]:
        """All contexts whose function name is ``name``."""
        return [n for n in self.nodes if n.name == name]

    def __len__(self) -> int:
        return len(self.nodes)
