"""Structures shared by multiple tools (calling-context tree, ...)."""

from repro.common.cct import INVALID_CTX, ROOT_NAME, ContextNode, ContextTree

__all__ = ["INVALID_CTX", "ROOT_NAME", "ContextNode", "ContextTree"]
