"""Callgrind-equivalent: calltree costs, cache/branch simulation, cycles."""

from repro.callgrind.branch import BimodalPredictor
from repro.callgrind.cache import AccessResult, Cache, CacheConfig, CacheHierarchy
from repro.callgrind.collector import (
    CallgrindCollector,
    CallgrindCosts,
    CallgrindProfile,
)
from repro.callgrind.cycles import DEFAULT_CYCLE_MODEL, CycleModel

__all__ = [
    "BimodalPredictor",
    "AccessResult",
    "Cache",
    "CacheConfig",
    "CacheHierarchy",
    "CallgrindCollector",
    "CallgrindCosts",
    "CallgrindProfile",
    "DEFAULT_CYCLE_MODEL",
    "CycleModel",
]
