"""Bimodal branch predictor used for Callgrind-style misprediction counts."""

from __future__ import annotations

from typing import Dict

__all__ = ["BimodalPredictor"]


class BimodalPredictor:
    """Classic two-bit saturating counter per static branch site.

    Counter states 0..3; predict taken when the counter is 2 or 3.  New sites
    start weakly not-taken (state 1), matching common hardware reset state.
    """

    def __init__(self) -> None:
        self._counters: Dict[int, int] = {}
        self.branches = 0
        self.mispredicts = 0

    def record(self, site: int, taken: bool) -> bool:
        """Feed one resolved branch; returns True if it was mispredicted."""
        self.branches += 1
        counter = self._counters.get(site, 1)
        predicted_taken = counter >= 2
        mispredicted = predicted_taken != taken
        if mispredicted:
            self.mispredicts += 1
        if taken:
            counter = min(counter + 1, 3)
        else:
            counter = max(counter - 1, 0)
        self._counters[site] = counter
        return mispredicted

    def record_batch(self, sites, takens) -> int:
        """Feed a batch of resolved branches, in order; returns miss count.

        Exactly equivalent to calling :meth:`record` per element -- the
        two-bit counters are updated in stream order -- but in one fused
        loop over plain Python scalars, so the per-branch cost is a dict
        get/set instead of a full method dispatch.
        """
        sites = sites.tolist() if hasattr(sites, "tolist") else sites
        takens = takens.tolist() if hasattr(takens, "tolist") else takens
        counters = self._counters
        get = counters.get
        missed = 0
        for site, taken in zip(sites, takens):
            counter = get(site, 1)
            if (counter >= 2) != (taken != 0):
                missed += 1
            if taken:
                if counter < 3:
                    counters[site] = counter + 1
                else:
                    counters[site] = counter
            elif counter > 0:
                counters[site] = counter - 1
            else:
                counters[site] = counter
        self.branches += len(sites)
        self.mispredicts += missed
        return missed

    @property
    def miss_rate(self) -> float:
        return self.mispredicts / self.branches if self.branches else 0.0
