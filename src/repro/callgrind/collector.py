"""Callgrind-equivalent observer: context-sensitive calltree costs.

This is the reproduction's stand-in for Callgrind proper.  It maintains a
calling-context tree, attributes per-context self costs (instructions,
operations, memory traffic, cache misses, branch mispredictions, syscalls),
and can roll self costs up into inclusive costs -- exactly the inputs Sigil's
partitioning case study takes from Callgrind ("an estimated software run time
calculated by Callgrind" and "the number of operations in the function").

Instruction count: our substrates do not stream an explicit instruction-fetch
event, so retired instructions are accounted as the sum of primitive events
(operations + memory accesses + branches), which is exactly the set of
instructions the mini-VM retires.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.callgrind.branch import BimodalPredictor
from repro.callgrind.cache import CacheConfig, CacheHierarchy
from repro.callgrind.cycles import DEFAULT_CYCLE_MODEL, CycleModel
from repro.common.cct import ContextNode, ContextTree
from repro.trace.events import OpKind
from repro.trace.observer import MEM_READ, BaseObserver

__all__ = ["CallgrindCosts", "CallgrindProfile", "CallgrindCollector"]


@dataclass
class CallgrindCosts:
    """Self costs of one calling context."""

    instructions: int = 0
    iops: int = 0
    flops: int = 0
    reads: int = 0
    read_bytes: int = 0
    writes: int = 0
    write_bytes: int = 0
    l1_misses: int = 0
    ll_misses: int = 0
    branches: int = 0
    branch_misses: int = 0
    syscalls: int = 0

    def add(self, other: "CallgrindCosts") -> None:
        self.instructions += other.instructions
        self.iops += other.iops
        self.flops += other.flops
        self.reads += other.reads
        self.read_bytes += other.read_bytes
        self.writes += other.writes
        self.write_bytes += other.write_bytes
        self.l1_misses += other.l1_misses
        self.ll_misses += other.ll_misses
        self.branches += other.branches
        self.branch_misses += other.branch_misses
        self.syscalls += other.syscalls

    def copy(self) -> "CallgrindCosts":
        return CallgrindCosts(
            self.instructions,
            self.iops,
            self.flops,
            self.reads,
            self.read_bytes,
            self.writes,
            self.write_bytes,
            self.l1_misses,
            self.ll_misses,
            self.branches,
            self.branch_misses,
            self.syscalls,
        )

    @property
    def ops(self) -> int:
        """Total computational operations (the paper's platform-independent
        computation metric)."""
        return self.iops + self.flops


@dataclass
class CallgrindProfile:
    """The output of a Callgrind-equivalent run."""

    tree: ContextTree
    self_costs: Dict[int, CallgrindCosts] = field(default_factory=dict)
    cycle_model: CycleModel = DEFAULT_CYCLE_MODEL

    def costs_of(self, ctx_id: int) -> CallgrindCosts:
        costs = self.self_costs.get(ctx_id)
        if costs is None:
            costs = CallgrindCosts()
            self.self_costs[ctx_id] = costs
        return costs

    def inclusive_costs(self, node: ContextNode) -> CallgrindCosts:
        """Self costs of ``node`` plus all of its calltree descendants."""
        total = CallgrindCosts()
        for sub in node.walk():
            costs = self.self_costs.get(sub.id)
            if costs is not None:
                total.add(costs)
        return total

    def estimated_cycles(self, node: ContextNode, *, inclusive: bool = True) -> float:
        """Callgrind's estimated cycle count for a context (the paper's t_sw)."""
        costs = self.inclusive_costs(node) if inclusive else self.costs_of(node.id)
        return self.cycle_model.estimate(
            costs.instructions, costs.branch_misses, costs.l1_misses, costs.ll_misses
        )

    def total_cycles(self) -> float:
        """Estimated cycles of the whole run."""
        return self.estimated_cycles(self.tree.root, inclusive=True)


class CallgrindCollector(BaseObserver):
    """Observer producing a :class:`CallgrindProfile`.

    Parameters mirror Callgrind's cache knobs; pass ``d1=None, ll=None`` with
    ``simulate_cache=False`` to skip cache simulation (faster, costs lose
    miss counts).
    """

    #: Consume the transport's run-length batches directly: the counters
    #: fall out of the run descriptors (plain Python ints, no NumPy), and
    #: only the line expansion touches arrays.
    batch_accepts_runs = True

    def __init__(
        self,
        *,
        d1: Optional[CacheConfig] = None,
        ll: Optional[CacheConfig] = None,
        simulate_cache: bool = True,
        simulate_branch: bool = True,
        cycle_model: CycleModel = DEFAULT_CYCLE_MODEL,
    ):
        self.tree = ContextTree()
        self.profile = CallgrindProfile(self.tree, cycle_model=cycle_model)
        self.caches = CacheHierarchy(d1, ll) if simulate_cache else None
        self.predictor = BimodalPredictor() if simulate_branch else None
        self._cur: ContextNode = self.tree.root
        self._cur_costs: CallgrindCosts = self.profile.costs_of(self.tree.root.id)
        self._stack: List[ContextNode] = []
        # Per-thread call stacks; caches/predictor stay shared (one machine).
        self._tid = 0
        self._threads: Dict[int, List[ContextNode]] = {0: self._stack}
        self._thread_cur: Dict[int, ContextNode] = {0: self._cur}

    def on_thread_switch(self, tid: int) -> None:
        if tid == self._tid:
            return
        self._thread_cur[self._tid] = self._cur
        if tid not in self._threads:
            self._threads[tid] = []
            self._thread_cur[tid] = self.tree.root
        self._tid = tid
        self._stack = self._threads[tid]
        self._cur = self._thread_cur[tid]
        self._cur_costs = self.profile.costs_of(self._cur.id)

    # -- structure -------------------------------------------------------

    def on_fn_enter(self, name: str) -> None:
        self._stack.append(self._cur)
        self._cur = self.tree.child(self._cur, name)
        self._cur.calls += 1
        self._cur_costs = self.profile.costs_of(self._cur.id)

    def on_fn_exit(self, name: str) -> None:
        self._cur = self._stack.pop()
        self._cur_costs = self.profile.costs_of(self._cur.id)

    # -- costs ---------------------------------------------------------------

    def on_op(self, kind: OpKind, count: int) -> None:
        costs = self._cur_costs
        costs.instructions += count
        if kind is OpKind.FLOAT:
            costs.flops += count
        else:
            costs.iops += count

    def on_mem_read(self, addr: int, size: int) -> None:
        costs = self._cur_costs
        costs.instructions += 1
        costs.reads += 1
        costs.read_bytes += size
        if self.caches is not None:
            result = self.caches.access(addr, size)
            costs.l1_misses += result.l1_misses
            costs.ll_misses += result.ll_misses

    def on_mem_write(self, addr: int, size: int) -> None:
        costs = self._cur_costs
        costs.instructions += 1
        costs.writes += 1
        costs.write_bytes += size
        if self.caches is not None:
            result = self.caches.access(addr, size)
            costs.l1_misses += result.l1_misses
            costs.ll_misses += result.ll_misses

    def _expand_lines(self, addrs, sizes) -> np.ndarray:
        """Per-access line expansion of a batch, concatenated in order.

        One entry per line touch, exactly what the scalar path's
        ``lines_of`` loop would visit (size-0 accesses touch one line).
        """
        shift = self.caches.d1._line_shift
        lo = addrs >> shift
        hi = (addrs + np.maximum(sizes, 1) - 1) >> shift
        if (lo == hi).all():  # no access straddles a line (the common case)
            return lo
        cnt = hi - lo + 1
        total = int(cnt.sum())
        start = np.cumsum(cnt) - cnt
        idx = np.arange(total, dtype=np.int64)
        return np.repeat(lo, cnt) + (idx - np.repeat(start, cnt))

    def on_mem_batch(self, addrs, sizes, kinds) -> None:
        """Account a batch of accesses at once.

        The aggregate counters collapse into array reductions, and the
        cache simulation runs over the batch's concatenated line expansion
        via :meth:`CacheHierarchy.access_lines` -- miss counts identical to
        the scalar path, since cache state depends only on the line-touch
        stream, which both expansion and the transport preserve.
        """
        n = len(addrs)
        if n == 0:
            return
        costs = self._cur_costs
        costs.instructions += n
        sizes_arr = np.asarray(sizes, dtype=np.int64)
        is_read = np.asarray(kinds, dtype=np.uint8) == MEM_READ
        reads = int(is_read.sum())
        read_bytes = int(sizes_arr[is_read].sum()) if reads else 0
        costs.reads += reads
        costs.read_bytes += read_bytes
        costs.writes += n - reads
        costs.write_bytes += int(sizes_arr.sum()) - read_bytes
        caches = self.caches
        if caches is None:
            return
        lines = self._expand_lines(np.asarray(addrs, dtype=np.int64), sizes_arr)
        l1, ll = caches.access_lines(lines)
        costs.l1_misses += l1
        costs.ll_misses += ll

    def on_mem_batch_runs(self, addrs, rkeys, rends) -> None:
        """Run-length variant of :meth:`on_mem_batch` (see the transport).

        ``addrs`` is the int64 address array; run ``i`` covers
        ``addrs[rends[i-1]:rends[i]]`` with key ``rkeys[i] == (size << 1) |
        kind``.  The counter sums come straight from the descriptors, so a
        typical batch (a handful of runs) does no array work at all beyond
        the line expansion.
        """
        n = len(addrs)
        if n == 0:
            return
        costs = self._cur_costs
        costs.instructions += n
        reads = read_bytes = writes = write_bytes = 0
        prev = 0
        for key, end in zip(rkeys, rends):
            cnt = end - prev
            prev = end
            size = key >> 1
            if key & 1:
                writes += cnt
                write_bytes += cnt * size
            else:
                reads += cnt
                read_bytes += cnt * size
        costs.reads += reads
        costs.read_bytes += read_bytes
        costs.writes += writes
        costs.write_bytes += write_bytes
        caches = self.caches
        if caches is None:
            return
        if len(rkeys) == 1:
            size = rkeys[0] >> 1
            shift = caches.d1._line_shift
            if size <= 1:
                lines = addrs >> shift
            else:
                lo = addrs >> shift
                hi = (addrs + (size - 1)) >> shift
                if (lo == hi).all():
                    lines = lo
                else:
                    sizes_arr = np.full(n, size, dtype=np.int64)
                    lines = self._expand_lines(addrs, sizes_arr)
        else:
            rk = np.asarray(rkeys, dtype=np.int64)
            lens = np.diff(np.asarray(rends, dtype=np.int64), prepend=0)
            lines = self._expand_lines(addrs, np.repeat(rk >> 1, lens))
        l1, ll = caches.access_lines(lines)
        costs.l1_misses += l1
        costs.ll_misses += ll

    def on_branch(self, site: int, taken: bool) -> None:
        costs = self._cur_costs
        costs.instructions += 1
        costs.branches += 1
        if self.predictor is not None and self.predictor.record(site, taken):
            costs.branch_misses += 1

    def on_branch_batch(self, sites, takens) -> None:
        """Account a batch of branches; predictor state updates in order."""
        n = len(sites)
        if n == 0:
            return
        costs = self._cur_costs
        costs.instructions += n
        costs.branches += n
        if self.predictor is not None:
            costs.branch_misses += self.predictor.record_batch(sites, takens)

    def on_syscall_enter(self, name: str, input_bytes: int) -> None:
        self._cur_costs.syscalls += 1

    def on_run_end(self) -> None:
        if any(stack for stack in self._threads.values()):
            raise RuntimeError("unbalanced function enter/exit in trace")

    def record_telemetry(self, telemetry) -> None:
        """Publish the collector's whole-run totals into ``telemetry``.

        One pass over the per-context self costs after the run: calls made,
        instructions retired, cache-simulator and branch-predictor event
        counts.  Nothing here runs on the per-event path.
        """
        total = CallgrindCosts()
        for costs in self.profile.self_costs.values():
            total.add(costs)
        calls = sum(
            node.calls for node in self.tree.nodes if node.parent is not None
        )
        telemetry.counter("callgrind.calls").inc(calls)
        telemetry.counter("callgrind.instructions").inc(total.instructions)
        telemetry.counter("callgrind.l1_misses").inc(total.l1_misses)
        telemetry.counter("callgrind.ll_misses").inc(total.ll_misses)
        telemetry.counter("callgrind.branches").inc(total.branches)
        telemetry.counter("callgrind.branch_misses").inc(total.branch_misses)
        telemetry.counter("callgrind.syscalls").inc(total.syscalls)
