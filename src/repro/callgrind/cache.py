"""Set-associative cache simulator, after Callgrind's on-the-fly cache model.

Callgrind "performs on-the-fly cache simulations to determine the behavior of
the program"; its miss counts feed the cycle-estimation formula the paper
uses for the software-runtime side of the partitioning study.  We model a
data hierarchy (D1 backed by LL) with true-LRU sets, write-allocate, and
accesses that may straddle line boundaries.

The instruction side of Callgrind's model (I1) has no analogue here because
the substrates do not fetch encoded instructions from memory; the cycle
formula accounts for instruction count directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

__all__ = ["CacheConfig", "Cache", "CacheHierarchy", "AccessResult"]


@dataclass(frozen=True)
class CacheConfig:
    """Geometry of one cache level (sizes in bytes)."""

    size: int = 32 * 1024
    assoc: int = 8
    line_size: int = 64

    def __post_init__(self) -> None:
        if self.line_size <= 0 or self.line_size & (self.line_size - 1):
            raise ValueError("line_size must be a positive power of two")
        if self.size % (self.assoc * self.line_size):
            raise ValueError("size must be a multiple of assoc * line_size")

    @property
    def n_sets(self) -> int:
        return self.size // (self.assoc * self.line_size)


@dataclass(frozen=True)
class AccessResult:
    """Miss counts incurred by one (possibly line-straddling) access."""

    l1_misses: int
    ll_misses: int


class Cache:
    """One level of true-LRU set-associative cache."""

    def __init__(self, config: CacheConfig):
        self.config = config
        self._line_shift = config.line_size.bit_length() - 1
        self._n_sets = config.n_sets
        self._set_mask = self._n_sets - 1
        # Per set: list of tags, most-recently-used last.
        self._sets: List[List[int]] = [[] for _ in range(self._n_sets)]
        self.accesses = 0
        self.misses = 0

    def access_line(self, line_no: int) -> bool:
        """Touch one line; returns True on miss."""
        self.accesses += 1
        idx = line_no & self._set_mask
        tag = line_no >> (self._n_sets.bit_length() - 1)
        ways = self._sets[idx]
        if tag in ways:
            ways.remove(tag)
            ways.append(tag)
            return False
        self.misses += 1
        ways.append(tag)
        if len(ways) > self.config.assoc:
            ways.pop(0)
        return True

    def lines_of(self, addr: int, size: int) -> range:
        """Line numbers covered by an access of ``size`` bytes at ``addr``."""
        first = addr >> self._line_shift
        last = (addr + max(size, 1) - 1) >> self._line_shift
        return range(first, last + 1)


class CacheHierarchy:
    """D1 backed by a unified last-level cache, as Callgrind simulates."""

    def __init__(
        self,
        d1: Optional[CacheConfig] = None,
        ll: Optional[CacheConfig] = None,
    ):
        self.d1 = Cache(d1 if d1 is not None else CacheConfig())
        self.ll = Cache(
            ll if ll is not None else CacheConfig(size=8 * 1024 * 1024, assoc=16)
        )
        if self.d1.config.line_size != self.ll.config.line_size:
            raise ValueError("D1 and LL must share a line size")

    def access(self, addr: int, size: int) -> AccessResult:
        """Run one data access through D1 and, on miss, LL."""
        l1_misses = 0
        ll_misses = 0
        for line in self.d1.lines_of(addr, size):
            if self.d1.access_line(line):
                l1_misses += 1
                if self.ll.access_line(line):
                    ll_misses += 1
        return AccessResult(l1_misses, ll_misses)
