"""Set-associative cache simulator, after Callgrind's on-the-fly cache model.

Callgrind "performs on-the-fly cache simulations to determine the behavior of
the program"; its miss counts feed the cycle-estimation formula the paper
uses for the software-runtime side of the partitioning study.  We model a
data hierarchy (D1 backed by LL) with true-LRU sets, write-allocate, and
accesses that may straddle line boundaries.

LRU is kept as a per-set dict mapping resident line number to the tick of
its last touch; the victim is the minimum-tick entry.  Within one set the
tag <-> line mapping is a bijection, so this is exactly the classic
recency-list LRU, but a hit costs one dict store instead of a
``list.remove`` scan, and the batched walk in :meth:`CacheHierarchy.
access_lines` can share the same structures with the scalar path.

The instruction side of Callgrind's model (I1) has no analogue here because
the substrates do not fetch encoded instructions from memory; the cycle
formula accounts for instruction count directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

__all__ = ["CacheConfig", "Cache", "CacheHierarchy", "AccessResult"]


@dataclass(frozen=True)
class CacheConfig:
    """Geometry of one cache level (sizes in bytes)."""

    size: int = 32 * 1024
    assoc: int = 8
    line_size: int = 64

    def __post_init__(self) -> None:
        if self.line_size <= 0 or self.line_size & (self.line_size - 1):
            raise ValueError("line_size must be a positive power of two")
        if self.size % (self.assoc * self.line_size):
            raise ValueError("size must be a multiple of assoc * line_size")
        n_sets = self.size // (self.assoc * self.line_size)
        if n_sets <= 0 or n_sets & (n_sets - 1):
            raise ValueError(
                "set count must be a positive power of two (size / (assoc * "
                f"line_size) = {n_sets}); indexing masks with n_sets - 1, so "
                "a non-power-of-two geometry would silently alias sets"
            )

    @property
    def n_sets(self) -> int:
        return self.size // (self.assoc * self.line_size)


@dataclass(frozen=True)
class AccessResult:
    """Miss counts incurred by one (possibly line-straddling) access."""

    l1_misses: int
    ll_misses: int


class Cache:
    """One level of true-LRU set-associative cache."""

    def __init__(self, config: CacheConfig):
        self.config = config
        self._line_shift = config.line_size.bit_length() - 1
        self._n_sets = config.n_sets
        self._set_mask = self._n_sets - 1
        # Per set: resident line number -> tick of last touch.  The victim
        # is the minimum-tick entry (identical to recency-list LRU).
        self._sets: List[Dict[int, int]] = [{} for _ in range(self._n_sets)]
        self._tick = 0
        self.accesses = 0
        self.misses = 0

    def access_line(self, line_no: int) -> bool:
        """Touch one line; returns True on miss."""
        self.accesses += 1
        self._tick += 1
        ways = self._sets[line_no & self._set_mask]
        if line_no in ways:
            ways[line_no] = self._tick
            return False
        self.misses += 1
        if len(ways) >= self.config.assoc:
            del ways[min(ways, key=ways.get)]
        ways[line_no] = self._tick
        return True

    def lines_of(self, addr: int, size: int) -> range:
        """Line numbers covered by an access of ``size`` bytes at ``addr``."""
        first = addr >> self._line_shift
        last = (addr + max(size, 1) - 1) >> self._line_shift
        return range(first, last + 1)


class CacheHierarchy:
    """D1 backed by a unified last-level cache, as Callgrind simulates."""

    def __init__(
        self,
        d1: Optional[CacheConfig] = None,
        ll: Optional[CacheConfig] = None,
    ):
        self.d1 = Cache(d1 if d1 is not None else CacheConfig())
        self.ll = Cache(
            ll if ll is not None else CacheConfig(size=8 * 1024 * 1024, assoc=16)
        )
        if self.d1.config.line_size != self.ll.config.line_size:
            raise ValueError("D1 and LL must share a line size")

    def access(self, addr: int, size: int) -> AccessResult:
        """Run one data access through D1 and, on miss, LL."""
        l1_misses = 0
        ll_misses = 0
        for line in self.d1.lines_of(addr, size):
            if self.d1.access_line(line):
                l1_misses += 1
                if self.ll.access_line(line):
                    ll_misses += 1
        return AccessResult(l1_misses, ll_misses)

    def access_lines(self, lines: np.ndarray) -> Tuple[int, int]:
        """Run an in-order line-touch stream through the hierarchy in bulk.

        ``lines`` is the concatenated per-access line expansion of a batch
        (one entry per line touch, program order); returns ``(l1_misses,
        ll_misses)`` and folds all counters into the member caches, exactly
        as the equivalent sequence of :meth:`Cache.access_line` calls would.

        Consecutive touches of the same line are deduplicated first: after
        the first touch the line is resident and most-recently-used, so the
        repeats are guaranteed D1 hits that change neither LRU order nor
        miss counts (they still count as D1 accesses).  Real streams are
        dominated by these MRU repeats, so the residual sequential walk --
        one fused D1+LL pass over plain Python ints -- runs over far fewer
        entries than the batch touched.
        """
        n_touches = len(lines)
        if not n_touches:
            return (0, 0)
        if n_touches > 1:
            keep = np.empty(n_touches, dtype=bool)
            keep[0] = True
            np.not_equal(lines[1:], lines[:-1], out=keep[1:])
            if not keep.all():
                lines = lines[keep]
        d1 = self.d1
        ll = self.ll
        d1_sets = d1._sets
        d1_mask = d1._set_mask
        d1_assoc = d1.config.assoc
        ll_sets = ll._sets
        ll_mask = ll._set_mask
        ll_assoc = ll.config.assoc
        t1 = d1._tick
        t2 = ll._tick
        l1_misses = 0
        ll_accesses = 0
        ll_misses = 0
        for line in lines.tolist():
            ways = d1_sets[line & d1_mask]
            t1 += 1
            if line in ways:
                ways[line] = t1
                continue
            l1_misses += 1
            if len(ways) >= d1_assoc:
                del ways[min(ways, key=ways.get)]
            ways[line] = t1
            ll_accesses += 1
            w2 = ll_sets[line & ll_mask]
            t2 += 1
            if line in w2:
                w2[line] = t2
            else:
                ll_misses += 1
                if len(w2) >= ll_assoc:
                    del w2[min(w2, key=w2.get)]
                w2[line] = t2
        d1._tick = t1
        ll._tick = t2
        d1.accesses += n_touches
        d1.misses += l1_misses
        ll.accesses += ll_accesses
        ll.misses += ll_misses
        return (l1_misses, ll_misses)
