"""Callgrind's cycle-estimation formula.

The paper estimates the software run time of a function on a general-purpose
CPU with "the calculation used by Callgrind to estimate cycle count"
(section III), whose inputs are the default Callgrind profiling parameters:
instruction count, cache miss counts, and branch misprediction count.
Callgrind/KCachegrind's conventional weighting is::

    CEst = Ir + 10 * Bm + 10 * L1m + 100 * LLm

where ``Ir`` is retired instructions, ``Bm`` mispredicted branches, ``L1m``
first-level misses and ``LLm`` last-level misses.  The weights are exposed as
a dataclass so studies can explore other machine points.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["CycleModel", "DEFAULT_CYCLE_MODEL"]


@dataclass(frozen=True)
class CycleModel:
    """Weights of the cycle-estimation formula (Callgrind defaults)."""

    per_instruction: float = 1.0
    per_branch_miss: float = 10.0
    per_l1_miss: float = 10.0
    per_ll_miss: float = 100.0

    def estimate(
        self,
        instructions: int,
        branch_misses: int,
        l1_misses: int,
        ll_misses: int,
    ) -> float:
        """Estimated cycles for the given event counts."""
        return (
            self.per_instruction * instructions
            + self.per_branch_miss * branch_misses
            + self.per_l1_miss * l1_misses
            + self.per_ll_miss * ll_misses
        )


DEFAULT_CYCLE_MODEL = CycleModel()
