"""Configuration for the Sigil profiler."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = ["SigilConfig"]


@dataclass(frozen=True)
class SigilConfig:
    """Knobs of a Sigil run, mirroring the tool's command line.

    Attributes
    ----------
    reuse_mode:
        Extend every shadow object with re-use variables (Table I,
        "Additional variables for Reuse mode"): per-byte re-use counts and
        re-use lifetime windows, aggregated per function context.
    event_mode:
        Record the execution as a sequence of dependent events (compute
        segments joined by data-transfer edges) in addition to aggregates;
        required for critical-path analysis (sections II-C2, IV-C).
    max_shadow_pages:
        The paper's memory-limit command-line option: bound the number of
        live shadow pages, evicting the least recently touched page when the
        bound is exceeded ("a simple FIFO mechanism to free up space from
        shadow bytes of addresses that have been least recently touched").
        ``None`` disables the limit.  The paper enables this only for dedup.
    line_size:
        Granularity of shadowing in bytes.  1 is the paper's byte-level
        default; setting the cache line size (e.g. 64) gives the
        line-granularity mode of section IV-B3 / Figure 12.
    batch_size:
        Capacity of the batched trace transport's ring buffer.  When
        positive (the default), substrates accumulate memory accesses into
        preallocated NumPy buffers and deliver them to the tools in batches
        (:meth:`repro.trace.observer.TraceObserver.on_mem_batch`), which the
        profilers process with grouped array kernels.  ``0`` selects the
        legacy scalar path (one observer call per access).  Profiles are
        byte-identical either way; only throughput changes.
    track_unread_writes:
        Whether bytes written but never read still contribute to the
        producer's write totals (they always do) -- kept for documentation
        symmetry; reserved for future use.
    """

    reuse_mode: bool = False
    event_mode: bool = False
    max_shadow_pages: Optional[int] = None
    line_size: int = 1
    batch_size: int = 4096
    track_unread_writes: bool = True

    def __post_init__(self) -> None:
        if self.line_size <= 0 or self.line_size & (self.line_size - 1):
            raise ValueError("line_size must be a positive power of two")
        if self.max_shadow_pages is not None and self.max_shadow_pages <= 0:
            raise ValueError("max_shadow_pages must be positive or None")
        if self.batch_size < 0:
            raise ValueError("batch_size must be >= 0 (0 = scalar path)")
