"""Two-level shadow memory (Table I), after Nethercote & Seward.

"The goal of memory shadowing is to hold a shadow data object for every
unique byte used by the program. ... It is a two-level table, similar to an
operating system page-table, where each level is indexed by a portion of the
data byte-address.  The second-level structures are created only when the
corresponding portions of the address space are accessed.  These second-level
structures are a chunk of shadow objects which are initialized to 'invalid'
until the data byte corresponding to those addresses are used by the binary."
(paper, section II-B)

The second-level chunks are NumPy arrays, one slot per shadowed byte:

======================  =======  ==============================================
field                   dtype    meaning (Table I)
======================  =======  ==============================================
``writer``              int32    last writer (context id; -1 = invalid)
``writer_seg``          int64    segment that performed the last write
                                 (event mode only)
``reader``              int32    last reader (context id; -1 = invalid)
``reader_call``         int64    last reader call (global call number)
``reuse_count``         int32    # of non-unique accesses (reuse mode)
``win_first``           int64    re-use lifetime start (reuse mode)
``win_last``            int64    re-use lifetime finish (reuse mode)
======================  =======  ==============================================

The optional memory limit implements the paper's FIFO eviction of the shadow
pages whose addresses were least recently touched; before a page is dropped
its open re-use state is handed to a finalisation callback so aggregate
accuracy degrades gracefully (the paper reports the loss "negligible").
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Iterator, Optional, Tuple

import numpy as np

__all__ = ["ShadowPage", "ShadowMemory", "SHADOW_PAGE_SIZE"]

#: Shadow objects per second-level chunk.
SHADOW_PAGE_SIZE = 4096


class ShadowPage:
    """Second-level chunk of shadow objects for one page of address space."""

    __slots__ = (
        "page_no",
        "writer",
        "writer_seg",
        "reader",
        "reader_call",
        "reuse_count",
        "win_first",
        "win_last",
    )

    def __init__(self, page_no: int, *, reuse_mode: bool, event_mode: bool):
        self.page_no = page_no
        self.writer = np.full(SHADOW_PAGE_SIZE, -1, dtype=np.int32)
        self.reader = np.full(SHADOW_PAGE_SIZE, -1, dtype=np.int32)
        self.reader_call = np.full(SHADOW_PAGE_SIZE, -1, dtype=np.int64)
        self.writer_seg = (
            np.full(SHADOW_PAGE_SIZE, -1, dtype=np.int64) if event_mode else None
        )
        if reuse_mode:
            self.reuse_count = np.zeros(SHADOW_PAGE_SIZE, dtype=np.int32)
            self.win_first = np.full(SHADOW_PAGE_SIZE, -1, dtype=np.int64)
            self.win_last = np.full(SHADOW_PAGE_SIZE, -1, dtype=np.int64)
        else:
            self.reuse_count = None
            self.win_first = None
            self.win_last = None

    @property
    def nbytes(self) -> int:
        """Footprint of this page's shadow arrays in bytes."""
        total = self.writer.nbytes + self.reader.nbytes + self.reader_call.nbytes
        if self.writer_seg is not None:
            total += self.writer_seg.nbytes
        if self.reuse_count is not None:
            total += self.reuse_count.nbytes + self.win_first.nbytes + self.win_last.nbytes
        return total


class ShadowMemory:
    """First level of the two-level table: page number -> shadow chunk.

    Parameters
    ----------
    reuse_mode, event_mode:
        Which optional shadow fields to allocate.
    max_pages:
        The memory-limit option; when set, the least recently touched page
        is evicted once the limit is exceeded.
    on_evict:
        Called with each page just before it is dropped, so the profiler can
        finalise open re-use windows and per-byte re-use counts.
    """

    def __init__(
        self,
        *,
        reuse_mode: bool = False,
        event_mode: bool = False,
        max_pages: Optional[int] = None,
        on_evict: Optional[Callable[[ShadowPage], None]] = None,
    ):
        self._pages: "OrderedDict[int, ShadowPage]" = OrderedDict()
        self._reuse_mode = reuse_mode
        self._event_mode = event_mode
        self._max_pages = max_pages
        self._on_evict = on_evict
        self.pages_created = 0
        self.pages_evicted = 0
        self.peak_pages = 0

    # -- lookup -----------------------------------------------------------

    def page(self, page_no: int) -> ShadowPage:
        """Get (or create) the shadow chunk for address page ``page_no``."""
        page = self._pages.get(page_no)
        if page is not None:
            if self._max_pages is not None:
                self._pages.move_to_end(page_no)
            return page
        page = ShadowPage(
            page_no, reuse_mode=self._reuse_mode, event_mode=self._event_mode
        )
        self._pages[page_no] = page
        self.pages_created += 1
        if len(self._pages) > self.peak_pages:
            self.peak_pages = len(self._pages)
        if self._max_pages is not None and len(self._pages) > self._max_pages:
            _, victim = self._pages.popitem(last=False)
            self.pages_evicted += 1
            if self._on_evict is not None:
                self._on_evict(victim)
        return page

    def chunks(self, addr: int, size: int) -> Iterator[Tuple[ShadowPage, int, int]]:
        """Split ``[addr, addr+size)`` into per-page (page, lo, hi) slices."""
        if size <= 0:
            return
        page_no = addr // SHADOW_PAGE_SIZE
        offset = addr % SHADOW_PAGE_SIZE
        remaining = size
        while remaining > 0:
            chunk = min(SHADOW_PAGE_SIZE - offset, remaining)
            yield self.page(page_no), offset, offset + chunk
            remaining -= chunk
            page_no += 1
            offset = 0

    def pages(self) -> Iterator[ShadowPage]:
        """All live pages (used by end-of-run finalisation)."""
        return iter(self._pages.values())

    # -- accounting ------------------------------------------------------------

    @property
    def live_pages(self) -> int:
        return len(self._pages)

    @property
    def shadow_bytes(self) -> int:
        """Current footprint of all live shadow chunks."""
        return sum(page.nbytes for page in self._pages.values())

    @property
    def peak_shadow_bytes(self) -> int:
        """Upper-bound footprint estimate from the peak live page count."""
        if not self._pages:
            per_page = ShadowPage(
                0, reuse_mode=self._reuse_mode, event_mode=self._event_mode
            ).nbytes
        else:
            per_page = next(iter(self._pages.values())).nbytes
        return self.peak_pages * per_page
