"""Event-mode output: the execution as a sequence of dependent events.

"Sigil can represent output data ... by recording a list of all of the data
transfers that occur.  In the latter representation, a program's essence can
be reconstructed as a sequence of dependent 'events'.  These events are
fragments of computation separated by data transfer edges." (section II-B)

A :class:`Segment` is one such fragment: a maximal interval during which a
single function call executes without an intervening call or return.  Every
function entry or resumption opens a new segment, implementing Figure 3's
"we add the second occurrence of A as a separate node although it belongs to
the same call".

Three kinds of edges join segments (all point forward in time):

* ``order`` -- from a call's previous segment to its next one,
  "to conservatively enforce order between regions within" a function;
* ``call`` -- from the caller's active segment to the callee's first segment
  (a callee cannot begin before the call site is reached);
* ``data`` -- from the segment that produced bytes to the segment that first
  consumed them, weighted by the number of unique bytes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Tuple, Union

import numpy as np

__all__ = [
    "Segment",
    "SegmentEdge",
    "EventLog",
    "EventArrays",
    "as_event_arrays",
    "EDGE_ORDER",
    "EDGE_CALL",
    "EDGE_DATA",
    "SEG_DTYPE",
    "OC_EDGE_DTYPE",
    "DATA_EDGE_DTYPE",
    "OC_KIND_ORDER",
    "OC_KIND_CALL",
]

EDGE_ORDER = "order"
EDGE_CALL = "call"
EDGE_DATA = "data"

#: Columnar segment record; the segment id is the row index (ids are dense).
SEG_DTYPE = np.dtype(
    [
        ("ctx", "<i8"),
        ("call", "<i8"),
        ("start", "<i8"),
        ("ops", "<i8"),
        ("thread", "<i8"),
    ]
)

#: Order/call edges share one table so their relative (insertion) order --
#: which the text format preserves -- survives the columnar round-trip.
OC_EDGE_DTYPE = np.dtype([("kind", "<i1"), ("src", "<i8"), ("dst", "<i8")])
OC_KIND_ORDER = 0
OC_KIND_CALL = 1

DATA_EDGE_DTYPE = np.dtype([("src", "<i8"), ("dst", "<i8"), ("bytes", "<i8")])


@dataclass
class Segment:
    """One fragment of a function call's computation."""

    seg_id: int
    ctx_id: int
    call_id: int
    start_time: int
    #: Self cost: operations retired within the fragment (Figure 3's
    #: "number of operations performed within the call").
    ops: int = 0
    #: Virtual thread the fragment ran on (0 for serial programs).
    thread: int = 0


@dataclass(frozen=True)
class SegmentEdge:
    """A dependency between two segments."""

    src: int
    dst: int
    kind: str
    bytes: int = 0


class EventLog:
    """Accumulates segments and their dependency edges during a run."""

    def __init__(self) -> None:
        self.segments: List[Segment] = []
        self._order_call_edges: List[SegmentEdge] = []
        # (src, dst) -> bytes for data edges; aggregated because one segment
        # usually consumes many bytes from the same producer.
        self._data_edges: Dict[Tuple[int, int], int] = {}

    def new_segment(
        self, ctx_id: int, call_id: int, time: int, thread: int = 0
    ) -> Segment:
        seg = Segment(len(self.segments), ctx_id, call_id, time, thread=thread)
        self.segments.append(seg)
        return seg

    def add_order_edge(self, src: int, dst: int) -> None:
        self._order_call_edges.append(SegmentEdge(src, dst, EDGE_ORDER))

    def add_call_edge(self, src: int, dst: int) -> None:
        self._order_call_edges.append(SegmentEdge(src, dst, EDGE_CALL))

    def add_data_bytes(self, src: int, dst: int, count: int) -> None:
        if src == dst or count <= 0:
            return
        key = (src, dst)
        self._data_edges[key] = self._data_edges.get(key, 0) + count

    def edges(self) -> List[SegmentEdge]:
        """All edges, data edges materialised with their byte weights."""
        data = [
            SegmentEdge(src, dst, EDGE_DATA, count)
            for (src, dst), count in self._data_edges.items()
        ]
        return self._order_call_edges + data

    @property
    def n_segments(self) -> int:
        return len(self.segments)

    def total_ops(self) -> int:
        """The program's serial length in operations."""
        return sum(seg.ops for seg in self.segments)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, EventLog):
            return NotImplemented
        return (
            self.segments == other.segments
            and self._order_call_edges == other._order_call_edges
            and self._data_edges == other._data_edges
        )


@dataclass
class EventArrays:
    """The event log as NumPy structured arrays (one row per record).

    The columnar twin of :class:`EventLog`: identical information, but laid
    out so that million-segment logs can be serialised, loaded and analysed
    without building per-row Python objects.  ``segs`` rows are indexed by
    segment id (ids are dense by construction); ``ordercall`` keeps order and
    call edges interleaved in their insertion order so that converting back
    to an :class:`EventLog` -- and from there to the v1 text format -- is
    byte-identical; ``data`` rows keep the aggregated data-edge order.
    """

    segs: np.ndarray
    ordercall: np.ndarray
    data: np.ndarray

    @property
    def n_segments(self) -> int:
        return int(len(self.segs))

    def total_ops(self) -> int:
        """The program's serial length in operations."""
        return int(self.segs["ops"].sum()) if len(self.segs) else 0

    @classmethod
    def empty(cls) -> "EventArrays":
        return cls(
            segs=np.empty(0, dtype=SEG_DTYPE),
            ordercall=np.empty(0, dtype=OC_EDGE_DTYPE),
            data=np.empty(0, dtype=DATA_EDGE_DTYPE),
        )

    @classmethod
    def from_eventlog(cls, events: EventLog) -> "EventArrays":
        segs = np.empty(events.n_segments, dtype=SEG_DTYPE)
        for seg in events.segments:
            segs[seg.seg_id] = (
                seg.ctx_id, seg.call_id, seg.start_time, seg.ops, seg.thread
            )
        oc = np.empty(len(events._order_call_edges), dtype=OC_EDGE_DTYPE)
        for i, edge in enumerate(events._order_call_edges):
            kind = OC_KIND_CALL if edge.kind == EDGE_CALL else OC_KIND_ORDER
            oc[i] = (kind, edge.src, edge.dst)
        data = np.empty(len(events._data_edges), dtype=DATA_EDGE_DTYPE)
        for i, ((src, dst), count) in enumerate(events._data_edges.items()):
            data[i] = (src, dst, count)
        return cls(segs=segs, ordercall=oc, data=data)

    def to_eventlog(self) -> EventLog:
        """Materialise the compatibility :class:`EventLog` object form."""
        events = EventLog()
        for ctx, call, start, ops, thread in self.segs.tolist():
            seg = events.new_segment(ctx, call, start, thread=thread)
            seg.ops = ops
        for kind, src, dst in self.ordercall.tolist():
            if kind == OC_KIND_CALL:
                events.add_call_edge(src, dst)
            else:
                events.add_order_edge(src, dst)
        for src, dst, count in self.data.tolist():
            events.add_data_bytes(src, dst, count)
        return events

    def validate(self) -> None:
        """Structural checks mirroring the text loader's validation."""
        if len(self.segs) and int(self.segs["ops"].min()) < 0:
            raise ValueError("segment ops must be non-negative")
        if len(self.segs) and int(self.segs["thread"].min()) < 0:
            raise ValueError("segment thread ids must be non-negative")
        n = self.n_segments
        for table, label in ((self.ordercall, "order/call"), (self.data, "data")):
            if not len(table):
                continue
            src, dst = table["src"], table["dst"]
            if int(src.min()) < 0 or int(dst.max()) >= n:
                raise ValueError(f"{label} edge endpoints out of range")
            if not bool((src < dst).all()):
                raise ValueError(
                    f"{label} edges must point forward in time (src < dst)"
                )
        if len(self.data) and int(self.data["bytes"].min()) < 0:
            raise ValueError("data edge byte counts must be non-negative")

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, EventArrays):
            return NotImplemented
        return (
            np.array_equal(self.segs, other.segs)
            and np.array_equal(self.ordercall, other.ordercall)
            and np.array_equal(self.data, other.data)
        )


def as_event_arrays(events: Union[EventLog, EventArrays]) -> EventArrays:
    """Coerce either event-log form to the columnar form."""
    if isinstance(events, EventArrays):
        return events
    return EventArrays.from_eventlog(events)
