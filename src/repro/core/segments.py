"""Event-mode output: the execution as a sequence of dependent events.

"Sigil can represent output data ... by recording a list of all of the data
transfers that occur.  In the latter representation, a program's essence can
be reconstructed as a sequence of dependent 'events'.  These events are
fragments of computation separated by data transfer edges." (section II-B)

A :class:`Segment` is one such fragment: a maximal interval during which a
single function call executes without an intervening call or return.  Every
function entry or resumption opens a new segment, implementing Figure 3's
"we add the second occurrence of A as a separate node although it belongs to
the same call".

Three kinds of edges join segments (all point forward in time):

* ``order`` -- from a call's previous segment to its next one,
  "to conservatively enforce order between regions within" a function;
* ``call`` -- from the caller's active segment to the callee's first segment
  (a callee cannot begin before the call site is reached);
* ``data`` -- from the segment that produced bytes to the segment that first
  consumed them, weighted by the number of unique bytes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

__all__ = ["Segment", "SegmentEdge", "EventLog", "EDGE_ORDER", "EDGE_CALL", "EDGE_DATA"]

EDGE_ORDER = "order"
EDGE_CALL = "call"
EDGE_DATA = "data"


@dataclass
class Segment:
    """One fragment of a function call's computation."""

    seg_id: int
    ctx_id: int
    call_id: int
    start_time: int
    #: Self cost: operations retired within the fragment (Figure 3's
    #: "number of operations performed within the call").
    ops: int = 0
    #: Virtual thread the fragment ran on (0 for serial programs).
    thread: int = 0


@dataclass(frozen=True)
class SegmentEdge:
    """A dependency between two segments."""

    src: int
    dst: int
    kind: str
    bytes: int = 0


class EventLog:
    """Accumulates segments and their dependency edges during a run."""

    def __init__(self) -> None:
        self.segments: List[Segment] = []
        self._order_call_edges: List[SegmentEdge] = []
        # (src, dst) -> bytes for data edges; aggregated because one segment
        # usually consumes many bytes from the same producer.
        self._data_edges: Dict[Tuple[int, int], int] = {}

    def new_segment(
        self, ctx_id: int, call_id: int, time: int, thread: int = 0
    ) -> Segment:
        seg = Segment(len(self.segments), ctx_id, call_id, time, thread=thread)
        self.segments.append(seg)
        return seg

    def add_order_edge(self, src: int, dst: int) -> None:
        self._order_call_edges.append(SegmentEdge(src, dst, EDGE_ORDER))

    def add_call_edge(self, src: int, dst: int) -> None:
        self._order_call_edges.append(SegmentEdge(src, dst, EDGE_CALL))

    def add_data_bytes(self, src: int, dst: int, count: int) -> None:
        if src == dst or count <= 0:
            return
        key = (src, dst)
        self._data_edges[key] = self._data_edges.get(key, 0) + count

    def edges(self) -> List[SegmentEdge]:
        """All edges, data edges materialised with their byte weights."""
        data = [
            SegmentEdge(src, dst, EDGE_DATA, count)
            for (src, dst), count in self._data_edges.items()
        ]
        return self._order_call_edges + data

    @property
    def n_segments(self) -> int:
        return len(self.segments)

    def total_ops(self) -> int:
        """The program's serial length in operations."""
        return sum(seg.ops for seg in self.segments)
