"""Per-context communication aggregates: Sigil's first output representation.

Every communicated byte is classified on the two axes of section II-A:

1. **input / output / local** -- derived from the edge matrix: an edge
   ``(writer, reader)`` with ``writer == reader`` is *local* traffic; with
   different endpoints the bytes are *output* of the writer and *input* of
   the reader.  The pseudo-writer :data:`~repro.common.cct.INVALID_CTX`
   stands for bytes with no recorded producer, i.e. program input staged by
   the environment (the syscall-visibility limitation of section III).
2. **unique / non-unique** -- first-time reads of a byte by a function call
   versus re-reads by the same call.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Set, Tuple

from repro.common.cct import INVALID_CTX, ContextNode, ContextTree

__all__ = ["FnComm", "CommEdge", "CommMatrix"]


@dataclass
class FnComm:
    """Self costs and raw traffic of one calling context."""

    iops: int = 0
    flops: int = 0
    reads: int = 0
    read_bytes: int = 0
    writes: int = 0
    write_bytes: int = 0
    syscall_input_bytes: int = 0
    syscall_output_bytes: int = 0

    @property
    def ops(self) -> int:
        return self.iops + self.flops


@dataclass
class CommEdge:
    """Bytes flowing from one context to another, split by uniqueness."""

    unique_bytes: int = 0
    nonunique_bytes: int = 0

    @property
    def total_bytes(self) -> int:
        return self.unique_bytes + self.nonunique_bytes


class CommMatrix:
    """Sparse (writer context, reader context) -> :class:`CommEdge` matrix."""

    def __init__(self) -> None:
        self._edges: Dict[Tuple[int, int], CommEdge] = {}

    def add(
        self, writer: int, reader: int, *, unique: int = 0, nonunique: int = 0
    ) -> None:
        edge = self._edges.get((writer, reader))
        if edge is None:
            edge = CommEdge()
            self._edges[(writer, reader)] = edge
        edge.unique_bytes += unique
        edge.nonunique_bytes += nonunique

    def get(self, writer: int, reader: int) -> CommEdge:
        return self._edges.get((writer, reader), CommEdge())

    def items(self) -> Iterable[Tuple[Tuple[int, int], CommEdge]]:
        return self._edges.items()

    def __len__(self) -> int:
        return len(self._edges)

    # -- per-context classification (input / output / local) ------------

    def local_edge(self, ctx: int) -> CommEdge:
        return self.get(ctx, ctx)

    def input_edges(self, ctx: int) -> Dict[int, CommEdge]:
        """writer -> edge, for all external producers read by ``ctx``."""
        return {
            w: e for (w, r), e in self._edges.items() if r == ctx and w != ctx
        }

    def output_edges(self, ctx: int) -> Dict[int, CommEdge]:
        """reader -> edge, for all external consumers of ``ctx``'s data."""
        return {
            r: e for (w, r), e in self._edges.items() if w == ctx and r != ctx
        }

    def unique_input_bytes(self, ctx: int) -> int:
        return sum(e.unique_bytes for e in self.input_edges(ctx).values())

    def unique_output_bytes(self, ctx: int) -> int:
        return sum(e.unique_bytes for e in self.output_edges(ctx).values())

    def unique_local_bytes(self, ctx: int) -> int:
        return self.local_edge(ctx).unique_bytes

    # -- subtree (inclusive) classification, for calltree merging -----------

    def boundary_bytes(
        self, subtree: Set[int], *, include_program_input: bool = True
    ) -> Tuple[int, int]:
        """Unique bytes crossing into / out of a merged set of contexts.

        This is the Figure 2 operation: "Any dashed edges within the box are
        then discarded and edges flowing in/out of the box are accumulated
        into the communication cost of the parent node."  Returns
        ``(input_bytes, output_bytes)`` of *unique* communication, since "the
        data flow edges in the graph must be unique communication" for an
        accelerator with internal memory (section IV-A).

        Bytes with no recorded producer (program input staged outside the
        program's own stores) are charged to the boundary by default -- an
        accelerator must receive its input data either way.  Pass
        ``include_program_input=False`` to model input arriving by DMA
        independent of the offload bus.
        """
        inp = 0
        out = 0
        for (writer, reader), edge in self._edges.items():
            if writer == INVALID_CTX and not include_program_input:
                continue
            writer_in = writer in subtree
            reader_in = reader in subtree
            if reader_in and not writer_in:
                inp += edge.unique_bytes
            elif writer_in and not reader_in:
                out += edge.unique_bytes
        return inp, out

    def subtree_ids(self, node: ContextNode) -> Set[int]:
        """Context ids of ``node`` and its whole calltree subtree."""
        return {sub.id for sub in node.walk()}


def total_unique_bytes(matrix: CommMatrix, tree: ContextTree) -> int:
    """Unique bytes transferred program-wide (every first-time read)."""
    return sum(edge.unique_bytes for _, edge in matrix.items())
