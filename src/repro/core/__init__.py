"""Sigil core: shadow-memory communication profiling."""

from repro.core.aggregate import CommEdge, CommMatrix, FnComm
from repro.core.config import SigilConfig
from repro.core.distance import COLD, ReuseDistanceProfiler
from repro.core.linegrain import LineRecord, LineReuseProfiler
from repro.core.profiler import ShadowStats, SigilProfile, SigilProfiler
from repro.core.reuse import (
    REUSE_BUCKET_BOUNDS,
    REUSE_BUCKET_LABELS,
    FnReuse,
    ReuseStats,
    bucketise_counts,
)
from repro.core.segments import (
    EDGE_CALL,
    EDGE_DATA,
    EDGE_ORDER,
    EventLog,
    Segment,
    SegmentEdge,
)
from repro.core.shadow import SHADOW_PAGE_SIZE, ShadowMemory, ShadowPage

__all__ = [
    "CommEdge",
    "CommMatrix",
    "FnComm",
    "SigilConfig",
    "COLD",
    "ReuseDistanceProfiler",
    "LineRecord",
    "LineReuseProfiler",
    "ShadowStats",
    "SigilProfile",
    "SigilProfiler",
    "REUSE_BUCKET_BOUNDS",
    "REUSE_BUCKET_LABELS",
    "FnReuse",
    "ReuseStats",
    "bucketise_counts",
    "EDGE_CALL",
    "EDGE_DATA",
    "EDGE_ORDER",
    "EventLog",
    "Segment",
    "SegmentEdge",
    "SHADOW_PAGE_SIZE",
    "ShadowMemory",
    "ShadowPage",
]
