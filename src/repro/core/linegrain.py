"""Line-granularity re-use mode (section IV-B3, Figure 12).

"Sigil can also capture line-level re-use when configured with the cache
line size.  In this mode, Sigil shadows every line in memory rather than
every byte. ... In this mode we print re-use counts and lifetime for every
block touched by the program, instead of aggregating costs by function."

This observer is deliberately lighter than the full profiler: one record per
touched line, counting repeat accesses (reads or writes after the first
touch) and the first/last access timestamps.  Re-written lines are *not*
retired -- a cache line is a fixed physical container, unlike a data byte
whose value generations the byte-level mode distinguishes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.core.reuse import REUSE_BUCKET_LABELS, bucketise_counts
from repro.trace.events import OpKind
from repro.trace.observer import BaseObserver, _expand_batch

__all__ = ["LineRecord", "LineReuseProfiler"]


@dataclass
class LineRecord:
    """Re-use record of one memory line."""

    line_no: int
    accesses: int
    first_access: int
    last_access: int

    @property
    def reuse_count(self) -> int:
        """Repeat accesses after the first touch."""
        return self.accesses - 1

    @property
    def lifetime(self) -> int:
        return self.last_access - self.first_access


class LineReuseProfiler(BaseObserver):
    """Tracks per-line access counts and lifetimes across the whole run."""

    def __init__(self, line_size: int = 64):
        if line_size <= 0 or line_size & (line_size - 1):
            raise ValueError("line_size must be a positive power of two")
        self.line_size = line_size
        self._shift = line_size.bit_length() - 1
        # line -> [accesses, first, last]; plain dict keeps this mode cheap.
        self._lines: Dict[int, List[int]] = {}
        self.time = 0

    # -- observer interface ----------------------------------------------

    def on_op(self, kind: OpKind, count: int) -> None:
        self.time += count

    def on_branch(self, site: int, taken: bool) -> None:
        self.time += 1

    def _touch(self, addr: int, size: int) -> None:
        self.time += 1
        if size <= 0:
            # Zero-byte accesses retire an instruction but touch no line;
            # fabricating a touch here would invent re-use that the
            # byte-granular modes (correctly) never see.
            return
        now = self.time
        first_line = addr >> self._shift
        last_line = (addr + size - 1) >> self._shift
        lines = self._lines
        for line_no in range(first_line, last_line + 1):
            rec = lines.get(line_no)
            if rec is None:
                lines[line_no] = [1, now, now]
            else:
                rec[0] += 1
                rec[2] = now

    def on_mem_read(self, addr: int, size: int) -> None:
        self._touch(addr, size)

    def on_mem_write(self, addr: int, size: int) -> None:
        self._touch(addr, size)

    #: Touch timestamps are per-access clock readings: the batching
    #: transport must keep ops from overtaking buffered accesses.
    batch_time_strict = True

    def on_mem_batch(self, addrs, sizes, kinds) -> None:
        """Touch a batch of accesses in one grouped pass.

        The transport flushes before every time-advancing event for strict
        observers, so access ``i`` of the batch ran at clock ``T + i + 1``
        -- reconstructing the exact scalar timestamps without per-access
        dispatch.  Lines are expanded, grouped, and merged with per-group
        counts and min/max touch times.
        """
        n = len(addrs)
        if n == 0:
            return
        addrs = np.asarray(addrs, dtype=np.int64)
        sizes = np.asarray(sizes, dtype=np.int64)
        if int(sizes.sum()) >> self._shift > 32 * n:
            # Bulk transfers: the scalar per-access path is cheaper once
            # each access spans many lines (see SigilProfiler.on_mem_batch).
            _expand_batch(self, addrs, sizes, kinds)
            return
        times = self.time + 1 + np.arange(n, dtype=np.int64)
        self.time += n
        valid = sizes > 0
        if not valid.all():
            addrs = addrs[valid]
            sizes = sizes[valid]
            times = times[valid]
            if addrs.size == 0:
                return
        shift = self._shift
        lo = addrs >> shift
        hi = (addrs + sizes - 1) >> shift
        if (hi == lo).all():
            # Common case: no access straddles a line; skip the ragged
            # expansion entirely.
            line, t = lo, times
            total = len(line)
        else:
            n_lines = hi - lo + 1
            total = int(n_lines.sum())
            start = np.cumsum(n_lines) - n_lines
            idx = np.arange(total, dtype=np.int64)
            line = np.repeat(lo, n_lines) + (idx - np.repeat(start, n_lines))
            t = np.repeat(times, n_lines)

        order = np.argsort(line, kind="stable")
        sl = line[order]
        st = t[order]  # non-decreasing within each line group
        new_grp = np.empty(total, dtype=bool)
        new_grp[0] = True
        np.not_equal(sl[1:], sl[:-1], out=new_grp[1:])
        g_start = np.flatnonzero(new_grp)
        g_end = np.empty(len(g_start), dtype=np.int64)
        g_end[:-1] = g_start[1:]
        g_end[-1] = total
        counts = g_end - g_start
        lines = self._lines
        for line_no, cnt, first, last in zip(
            sl[g_start].tolist(),
            counts.tolist(),
            st[g_start].tolist(),
            st[g_end - 1].tolist(),
        ):
            rec = lines.get(line_no)
            if rec is None:
                lines[line_no] = [cnt, first, last]
            else:
                rec[0] += cnt
                rec[2] = last

    # -- results -------------------------------------------------------------

    def records(self) -> List[LineRecord]:
        """Per-line records, in line-number order."""
        return [
            LineRecord(line_no, acc, first, last)
            for line_no, (acc, first, last) in sorted(self._lines.items())
        ]

    def reuse_breakdown(self) -> Dict[str, int]:
        """Bucketed counts of per-line re-use (Figure 12's bars)."""
        counts = np.array(
            [rec[0] - 1 for rec in self._lines.values()], dtype=np.int64
        )
        buckets = bucketise_counts(counts)
        return {
            label: int(count) for label, count in zip(REUSE_BUCKET_LABELS, buckets)
        }

    @property
    def n_lines(self) -> int:
        return len(self._lines)

    def record_telemetry(self, telemetry) -> None:
        """Publish this mode's footprint (lines shadowed, clock) once."""
        telemetry.gauge("linegrain.lines").set(len(self._lines))
        telemetry.gauge("linegrain.line_size").set(self.line_size)
        telemetry.counter("linegrain.time").inc(self.time)
