"""Re-use statistics: per-function lifetime windows and per-byte counts.

Definitions from the paper:

* *Re-use count* of a byte: the number of non-unique accesses to it, i.e.
  re-reads by a call that already read it (Table I, section II-A).
* *Re-use lifetime*: "the time between the first and last read of a single
  data byte within a function call" (section IV-B), with retired
  instructions as the architecture-independent proxy for time.

A *window* is one byte's read activity within one function call.  When a
window closes (the byte is read by a different call, is overwritten, is
evicted under the memory limit, or the program ends), a window that saw at
least one re-read contributes its lifetime to the reading context's
statistics and histogram (Figures 9-11); the byte's accumulated re-use count
feeds the global re-use distribution (Figure 8).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

__all__ = [
    "REUSE_BUCKET_BOUNDS",
    "REUSE_BUCKET_LABELS",
    "FnReuse",
    "ReuseStats",
    "bucketise_counts",
]

#: Bucket upper bounds (exclusive) for per-byte re-use counts; the last
#: bucket is unbounded.  Figure 8 groups these as {0, 1-9, >9}; Figure 12's
#: line mode uses all of {<10, <100, <1000, <10000, >10000}.
REUSE_BUCKET_BOUNDS: Tuple[int, ...] = (1, 10, 100, 1000, 10000)
REUSE_BUCKET_LABELS: Tuple[str, ...] = (
    "0",
    "1-9",
    "10-99",
    "100-999",
    "1000-9999",
    ">=10000",
)


def bucketise_counts(counts: np.ndarray) -> np.ndarray:
    """Histogram an array of per-byte re-use counts into the fixed buckets."""
    result = np.zeros(len(REUSE_BUCKET_BOUNDS) + 1, dtype=np.int64)
    if len(counts):
        idx = np.searchsorted(np.asarray(REUSE_BUCKET_BOUNDS), counts, side="right")
        np.add.at(result, idx, 1)
    return result


@dataclass
class FnReuse:
    """Re-use aggregate of one calling context."""

    #: Number of closed windows in which the byte was re-used at least once.
    reused_windows: int = 0
    #: Sum of lifetimes of those windows (instruction-count units).
    lifetime_sum: int = 0
    #: Total re-reads attributed to this context.
    reuse_accesses: int = 0
    #: lifetime-bin -> window count; bin = lifetime // bin_size.
    histogram: Dict[int, int] = field(default_factory=dict)

    @property
    def average_lifetime(self) -> float:
        """Average re-use lifetime of a re-used byte (Figure 9)."""
        if not self.reused_windows:
            return 0.0
        return self.lifetime_sum / self.reused_windows


class ReuseStats:
    """All re-use output of a Sigil run (reuse mode)."""

    def __init__(self, histogram_bin_size: int = 1000):
        self.bin_size = histogram_bin_size
        self.per_fn: Dict[int, FnReuse] = {}
        #: Global per-byte re-use count distribution (Figure 8's source).
        self.byte_buckets = np.zeros(len(REUSE_BUCKET_BOUNDS) + 1, dtype=np.int64)

    def fn(self, ctx_id: int) -> FnReuse:
        stats = self.per_fn.get(ctx_id)
        if stats is None:
            stats = FnReuse()
            self.per_fn[ctx_id] = stats
        return stats

    # -- window finalisation (vectorised) --------------------------------

    def close_windows(
        self,
        readers: np.ndarray,
        win_first: np.ndarray,
        win_last: np.ndarray,
    ) -> None:
        """Close a batch of windows; only re-used ones (last > first) count.

        ``readers`` are the contexts whose windows are closing; arrays are
        parallel.  Callers pre-filter to valid windows (reader >= 0).
        """
        reused = win_last > win_first
        if not reused.any():
            return
        ctxs = readers[reused].astype(np.int64)
        lifetimes = (win_last[reused] - win_first[reused]).astype(np.int64)
        bins = lifetimes // self.bin_size
        # Group (ctx, bin) pairs to update per-function histograms in bulk.
        # Lexsort keeps the two columns separate: packing them into one key
        # would need an a-priori bound on the bin number, and a long run
        # with a small bin_size overflows any fixed split.
        order = np.lexsort((bins, ctxs))
        sc = ctxs[order]
        sb = bins[order]
        slt = lifetimes[order]
        n = len(sc)
        boundary = np.empty(n, dtype=bool)
        boundary[0] = True
        np.logical_or(
            sc[1:] != sc[:-1], sb[1:] != sb[:-1], out=boundary[1:]
        )
        starts = np.flatnonzero(boundary)
        counts = np.diff(np.append(starts, n))
        lifetime_sums = np.add.reduceat(slt, starts)
        for i, count, lt_sum in zip(
            starts.tolist(), counts.tolist(), lifetime_sums.tolist()
        ):
            stats = self.fn(int(sc[i]))
            bin_no = int(sb[i])
            stats.reused_windows += count
            stats.lifetime_sum += lt_sum
            stats.histogram[bin_no] = stats.histogram.get(bin_no, 0) + count

    def account_reuse_accesses(self, readers: np.ndarray) -> None:
        """Attribute one re-read per entry to the reading context."""
        if not len(readers):
            return
        uniq, counts = np.unique(readers, return_counts=True)
        for ctx, count in zip(uniq.tolist(), counts.tolist()):
            self.fn(int(ctx)).reuse_accesses += int(count)

    def retire_bytes(self, reuse_counts: np.ndarray) -> None:
        """Fold dead data bytes' re-use counts into the global distribution.

        Called when bytes are overwritten (the old value dies), evicted, or
        at end of run.
        """
        self.byte_buckets += bucketise_counts(reuse_counts)

    # -- reporting -----------------------------------------------------------

    def byte_breakdown(self) -> Dict[str, int]:
        """Label -> byte count, over all retired data bytes."""
        return {
            label: int(count)
            for label, count in zip(REUSE_BUCKET_LABELS, self.byte_buckets)
        }

    def fn_histogram(self, ctx_id: int) -> List[Tuple[int, int]]:
        """Sorted (lifetime_bin_start, window_count) pairs for one context."""
        stats = self.per_fn.get(ctx_id)
        if stats is None:
            return []
        return sorted(
            (bin_no * self.bin_size, count) for bin_no, count in stats.histogram.items()
        )
