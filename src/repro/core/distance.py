"""Re-use distance (LRU stack distance) analysis.

Section IV-B3 points out that per-line re-use data "can be used for re-use
distance analysis and to inform cache-replacement policies".  This module
follows through: an observer that computes the exact LRU stack distance of
every line access (the number of *distinct* lines touched since the last
access to the same line) using the classic Bennett-Kruskal algorithm --
one marker per line's previous access in a Fenwick tree indexed by time.

Stack distances are platform-independent like the rest of Sigil's output,
yet predict platform behaviour exactly: a fully-associative LRU cache of
capacity ``C`` lines misses precisely on accesses with distance >= C, so the
histogram yields the whole miss-ratio curve in one profiling pass
(:meth:`ReuseDistanceProfiler.miss_ratio_curve`).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.trace.observer import BaseObserver

__all__ = ["ReuseDistanceProfiler", "COLD"]

#: Distance reported for first-ever (cold) accesses.
COLD = -1


class _Fenwick:
    """Appendable Fenwick tree over access timestamps.

    Positions are appended one per clock tick; a freshly appended node is
    seeded with the sum of the (already empty-at-top) range it covers so the
    internal prefix structure stays consistent as the tree grows.
    """

    def __init__(self) -> None:
        self._tree: List[int] = [0]  # 1-indexed; slot 0 unused
        self._n = 0  # valid 0-indexed positions: 0 .. _n-1

    def append_slot(self) -> None:
        """Make position ``_n`` addressable (with value 0)."""
        n = self._n + 1  # the new node's 1-indexed position
        low_bit = n & (-n)
        # Node n covers 0-indexed positions [n - low_bit, n - 1]; the new
        # position n-1 itself holds 0, the rest comes from prefix sums.
        value = self.prefix_sum(n - 2) - self.prefix_sum(n - low_bit - 1)
        self._tree.append(value)
        self._n = n

    def add(self, index: int, delta: int) -> None:
        if not 0 <= index < self._n:
            raise IndexError(f"position {index} not appended yet")
        i = index + 1
        while i <= self._n:
            self._tree[i] += delta
            i += i & (-i)

    def prefix_sum(self, index: int) -> int:
        """Sum of entries [0, index]."""
        if index < 0:
            return 0
        i = min(index + 1, self._n)
        total = 0
        while i > 0:
            total += self._tree[i]
            i -= i & (-i)
        return total


class ReuseDistanceProfiler(BaseObserver):
    """Computes the exact LRU stack-distance histogram at line granularity."""

    def __init__(self, line_size: int = 64):
        if line_size <= 0 or line_size & (line_size - 1):
            raise ValueError("line_size must be a positive power of two")
        self.line_size = line_size
        self._shift = line_size.bit_length() - 1
        self._last_time: Dict[int, int] = {}
        self._markers = _Fenwick()
        self._clock = 0
        #: distance -> access count (COLD for first touches).
        self.histogram: Dict[int, int] = {}
        self.accesses = 0

    # -- observation ------------------------------------------------------

    def _touch_line(self, line_no: int) -> None:
        self.accesses += 1
        now = self._clock
        self._clock += 1
        self._markers.append_slot()
        last = self._last_time.get(line_no)
        if last is None:
            distance = COLD
        else:
            # Distinct lines touched strictly after `last`: one marker per
            # line's most recent access.
            distance = self._markers.prefix_sum(now) - self._markers.prefix_sum(last)
            self._markers.add(last, -1)
        self._markers.add(now, 1)
        self._last_time[line_no] = now
        self.histogram[distance] = self.histogram.get(distance, 0) + 1

    def _access(self, addr: int, size: int) -> None:
        first = addr >> self._shift
        last = (addr + max(size, 1) - 1) >> self._shift
        for line in range(first, last + 1):
            self._touch_line(line)

    def on_mem_read(self, addr: int, size: int) -> None:
        self._access(addr, size)

    def on_mem_write(self, addr: int, size: int) -> None:
        self._access(addr, size)

    # -- results ---------------------------------------------------------------

    @property
    def cold_misses(self) -> int:
        return self.histogram.get(COLD, 0)

    def distances(self) -> List[Tuple[int, int]]:
        """Sorted (distance, count) pairs, cold accesses first."""
        return sorted(self.histogram.items())

    def miss_ratio(self, capacity_lines: int) -> float:
        """Predicted miss ratio of a fully-associative LRU cache.

        An access misses iff its stack distance is >= the capacity (cold
        accesses always miss).
        """
        if capacity_lines <= 0:
            raise ValueError("capacity must be positive")
        if not self.accesses:
            return 0.0
        misses = sum(
            count
            for distance, count in self.histogram.items()
            if distance == COLD or distance >= capacity_lines
        )
        return misses / self.accesses

    def miss_ratio_curve(
        self, capacities: Optional[List[int]] = None
    ) -> List[Tuple[int, float]]:
        """(capacity_lines, predicted miss ratio) along a capacity sweep."""
        if capacities is None:
            capacities = [2 ** k for k in range(1, 15)]
        return [(c, self.miss_ratio(c)) for c in capacities]
