"""Batched trace transport: amortise per-access observer dispatch.

The paper's headline cost is tool slowdown -- Sigil runs at ~20-100x native
because every memory access walks the shadow memory (section IV, Figures
4/5).  This reproduction pays the same tax as one Python call per access.
Related work amortises interception instead of paying per event (Scaler's
batched cross-flow interception; Kercher's per-epoch working-set
aggregation), and that is what this module does for the transport layer:

:class:`BatchingTransport` sits between a substrate and its observer.  It
accumulates memory accesses into a flat ``array('q')`` address buffer plus a
run-length side table (real access streams are long same-size, same-kind
runs), and hands the downstream observer whole batches through
:meth:`~repro.trace.observer.TraceObserver.on_mem_batch` -- or, for
downstreams that advertise ``batch_accepts_runs``, through
``on_mem_batch_runs`` without ever materialising per-access size/kind
arrays.  Branches are buffered the same way for lenient downstreams and
delivered through ``on_branch_batch``.

Flush boundaries
----------------
The buffers are flushed -- i.e. all pending accesses, then all pending
branches, are delivered in program order *before* the boundary event is
forwarded -- at:

* function enter and exit (the attributing context must not change
  mid-batch),
* syscall enter and exit,
* thread switches,
* run end, and
* buffer full.

Plain op events (``on_op``) and branches do **not** flush by default: the
instruction clock is a sum and predictor state depends only on the branch
stream's own order, so deferring accesses past ops/branches (and branches
past interleaved accesses) leaves every aggregate -- edges, byte
classification, misprediction counts, segment start times, totals --
byte-identical.  The one thing it would skew is *per-access timestamps*
(re-use lifetime windows, exact event interleaving).  Observers whose output
depends on those declare ``batch_time_strict = True`` and the transport then
flushes pending accesses before every op and forwards every branch scalar,
in exact stream order, trading batch occupancy for scalar-exact clocks.
Order among memory accesses, and among branches, is always preserved.

Flushes that collected only a handful of events (below
:data:`SCALAR_FLUSH_CUTOFF`) are replayed downstream as scalar calls:
vectorisation below that occupancy costs more than it saves, and
control-dense workloads spend most of their flushes there.
"""

from __future__ import annotations

from array import array

import numpy as np

from repro.trace.events import OpKind
from repro.trace.observer import (
    BaseObserver,
    TraceObserver,
    _expand_batch,
)

__all__ = ["DEFAULT_BATCH_SIZE", "SCALAR_FLUSH_CUTOFF", "BatchingTransport"]

#: Default buffer capacity (accesses); matches ``SigilConfig.batch_size``.
DEFAULT_BATCH_SIZE = 4096

#: Flushes holding fewer accesses than this are delivered as plain scalar
#: calls instead of ``on_mem_batch``.  Control-dense workloads flush at
#: every function boundary, so most batches hold only a handful of
#: accesses -- below this occupancy the array kernels' fixed per-batch cost
#: exceeds the whole scalar path, and batching them would *slow the run
#: down*.  Aggregates are identical either way; only the delivery mechanism
#: changes.
SCALAR_FLUSH_CUTOFF = 8


class BatchingTransport(BaseObserver):
    """Accumulate memory accesses and deliver them to ``downstream`` in bulk.

    Parameters
    ----------
    downstream:
        The observer (or :class:`~repro.trace.observer.ObserverPipe`) that
        receives the batches plus all non-memory events.
    batch_size:
        Buffer capacity; the buffers flush when full and at the boundaries
        documented in the module docstring.
    scalar_cutoff:
        Flushes holding fewer events than this are replayed as scalar
        calls (see :data:`SCALAR_FLUSH_CUTOFF`); ``0`` forces every flush
        through the batch hooks, which the kernel-semantics tests use.

    The hot-path handlers (``on_mem_read``/``on_mem_write``/``on_branch``)
    are installed as per-instance closures so each buffered access costs a
    couple of list appends and one size compare -- subclasses overriding
    them must rebuild the instance attributes, not just the class methods.
    The arrays passed downstream are freshly decoded per flush; downstream
    observers may retain them.
    """

    def __init__(
        self,
        downstream: TraceObserver,
        batch_size: int = DEFAULT_BATCH_SIZE,
        scalar_cutoff: int = SCALAR_FLUSH_CUTOFF,
    ):
        if batch_size <= 0:
            raise ValueError("batch_size must be positive (use the scalar "
                             "path directly instead of a 0-sized transport)")
        self.downstream = downstream
        self.batch_size = batch_size
        self.scalar_cutoff = scalar_cutoff
        self.strict_time = bool(getattr(downstream, "batch_time_strict", False))
        # -- downstream delivery hooks (resolved once) ---------------------
        self._mem_batch_hook = getattr(downstream, "on_mem_batch", None)
        runs_hook = getattr(downstream, "on_mem_batch_runs", None)
        self._runs_hook = (
            runs_hook
            if runs_hook is not None
            and getattr(downstream, "batch_accepts_runs", False)
            else None
        )
        self._branch_hook = getattr(downstream, "on_branch_batch", None)
        # -- access buffer: flat addresses + run-length side table ---------
        self._abuf = array("q")
        self._rkeys: list = []  # (size << 1) | kind per run
        self._rends: list = []  # exclusive end index per *completed* run
        # _cell[kind] holds the active run's size for that kind; the other
        # slot is forced to -1, so a single compare per access detects both
        # a size change and a kind flip.
        self._cell = [-1, -1]
        # -- branch buffer (lenient downstreams only) ----------------------
        self._bsites: list = []
        self._btakens: list = []
        # -- transport telemetry (read by record_telemetry) ---------------
        self.flushes = 0
        self.batched_accesses = 0
        self.batched_branches = 0
        self._install_hot_handlers()

    def _install_hot_handlers(self) -> None:
        """Bind the per-access closures as instance attributes."""
        cap = self.batch_size
        abuf = self._abuf
        cell = self._cell
        brk = self._run_break
        flush_mem = self._flush_mem

        def on_mem_read(addr, size, _append=abuf.append, _cell=cell,
                        _buf=abuf, _cap=cap, _brk=brk, _flush=flush_mem):
            _append(addr)
            if size != _cell[0]:
                _brk(size, 0)
            if len(_buf) >= _cap:
                _flush()

        def on_mem_write(addr, size, _append=abuf.append, _cell=cell,
                         _buf=abuf, _cap=cap, _brk=brk, _flush=flush_mem):
            _append(addr)
            if size != _cell[1]:
                _brk(size, 1)
            if len(_buf) >= _cap:
                _flush()

        self.on_mem_read = on_mem_read
        self.on_mem_write = on_mem_write

        if self.strict_time:
            down_branch = self.downstream.on_branch

            def on_branch(site, taken, _flush=flush_mem, _down=down_branch):
                _flush()
                _down(site, taken)

        else:
            bsites = self._bsites
            btakens = self._btakens
            flush_branches = self._flush_branches

            def on_branch(site, taken, _s=bsites.append, _t=btakens.append,
                          _b=bsites, _cap=cap, _flush=flush_branches):
                _s(site)
                _t(taken)
                if len(_b) >= _cap:
                    _flush()

        self.on_branch = on_branch

    # -- buffering ---------------------------------------------------------

    def _run_break(self, size: int, kind: int) -> None:
        """Close the active run (if any) and open one for (size, kind)."""
        cell = self._cell
        cell[1 - kind] = -1
        cell[kind] = size
        if self._rkeys:
            # The triggering address is already appended; the previous run
            # ends just before it.
            self._rends.append(len(self._abuf) - 1)
        self._rkeys.append((size << 1) | kind)

    def on_mem_batch(self, addrs, sizes, kinds) -> None:
        # Already-batched input (e.g. a chained transport): flush what we
        # hold, then pass the batch straight through.
        self.flush()
        n = len(addrs)
        self.flushes += 1
        self.batched_accesses += n
        if self._mem_batch_hook is not None:
            self._mem_batch_hook(addrs, sizes, kinds)
        else:  # bare downstream without the batching mixin
            _expand_batch(self.downstream, addrs, sizes, kinds)

    def flush(self) -> None:
        """Deliver all pending events downstream, preserving order.

        Pending memory accesses go first (they precede any buffered branch
        in every state the buffers can reach), then pending branches.
        Short flushes (< :data:`SCALAR_FLUSH_CUTOFF`) are replayed as
        scalar calls -- identical semantics, none of the per-batch kernel
        overhead.
        """
        self._flush_mem()
        self._flush_branches()

    def _flush_mem(self) -> None:
        buf = self._abuf
        n = len(buf)
        if not n:
            return
        self.flushes += 1
        self.batched_accesses += n
        rkeys = self._rkeys
        rends = self._rends
        rends.append(n)
        cell = self._cell
        cell[0] = -1
        cell[1] = -1
        down = self.downstream
        if n < self.scalar_cutoff:
            addrs = buf.tolist()
            del buf[:]
            self._rkeys = []
            self._rends = []
            read = down.on_mem_read
            write = down.on_mem_write
            i = 0
            for key, end in zip(rkeys, rends):
                size = key >> 1
                if key & 1:
                    for j in range(i, end):
                        write(addrs[j], size)
                else:
                    for j in range(i, end):
                        read(addrs[j], size)
                i = end
            return
        addrs = np.frombuffer(buf, dtype=np.int64).copy()
        del buf[:]
        self._rkeys = []
        self._rends = []
        if self._runs_hook is not None:
            self._runs_hook(addrs, rkeys, rends)
            return
        if len(rkeys) == 1:
            key = rkeys[0]
            sizes = np.full(n, key >> 1, dtype=np.int64)
            kinds = np.full(n, key & 1, dtype=np.uint8)
        else:
            rk = np.asarray(rkeys, dtype=np.int64)
            ends = np.asarray(rends, dtype=np.int64)
            lens = np.diff(ends, prepend=0)
            sizes = np.repeat(rk >> 1, lens)
            kinds = np.repeat((rk & 1).astype(np.uint8), lens)
        if self._mem_batch_hook is not None:
            self._mem_batch_hook(addrs, sizes, kinds)
        else:
            _expand_batch(down, addrs, sizes, kinds)

    def _flush_branches(self) -> None:
        sites = self._bsites
        n = len(sites)
        if not n:
            return
        takens = self._btakens
        self.batched_branches += n
        if n < self.scalar_cutoff or self._branch_hook is None:
            site_list = sites[:]
            taken_list = takens[:]
            del sites[:]
            del takens[:]
            branch = self.downstream.on_branch
            for site, taken in zip(site_list, taken_list):
                branch(site, taken)
            return
        site_arr = np.asarray(sites, dtype=np.int64)
        taken_arr = np.asarray(takens, dtype=bool)
        del sites[:]
        del takens[:]
        self._branch_hook(site_arr, taken_arr)

    # -- boundary events (flush, then forward) -----------------------------

    def on_fn_enter(self, name: str) -> None:
        self.flush()
        self.downstream.on_fn_enter(name)

    def on_fn_exit(self, name: str) -> None:
        self.flush()
        self.downstream.on_fn_exit(name)

    def on_op(self, kind: OpKind, count: int) -> None:
        if self.strict_time:
            self._flush_mem()
        self.downstream.on_op(kind, count)

    def on_syscall_enter(self, name: str, input_bytes: int) -> None:
        self.flush()
        self.downstream.on_syscall_enter(name, input_bytes)

    def on_syscall_exit(self, name: str, output_bytes: int) -> None:
        self.flush()
        self.downstream.on_syscall_exit(name, output_bytes)

    def on_thread_switch(self, tid: int) -> None:
        self.flush()
        self.downstream.on_thread_switch(tid)

    def on_run_begin(self) -> None:
        self.downstream.on_run_begin()

    def on_run_end(self) -> None:
        self.flush()
        self.downstream.on_run_end()

    # -- telemetry ---------------------------------------------------------

    @property
    def mean_occupancy(self) -> float:
        """Average accesses delivered per flush (batch-efficiency signal)."""
        if not self.flushes:
            return 0.0
        return self.batched_accesses / self.flushes

    def record_telemetry(self, telemetry) -> None:
        """Publish transport counters once, after the run (pull-based)."""
        telemetry.gauge("batch.size").set(self.batch_size)
        telemetry.gauge("batch.flushes").set(self.flushes)
        telemetry.gauge("batch.accesses").set(self.batched_accesses)
        telemetry.gauge("batch.branches").set(self.batched_branches)
        telemetry.gauge("batch.mean_occupancy").set(self.mean_occupancy)
        telemetry.gauge("batch.strict_time").set(int(self.strict_time))
