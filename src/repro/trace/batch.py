"""Batched trace transport: amortise per-access observer dispatch.

The paper's headline cost is tool slowdown -- Sigil runs at ~20-100x native
because every memory access walks the shadow memory (section IV, Figures
4/5).  This reproduction pays the same tax as one Python call per access.
Related work amortises interception instead of paying per event (Scaler's
batched cross-flow interception; Kercher's per-epoch working-set
aggregation), and that is what this module does for the transport layer:

:class:`BatchingTransport` sits between a substrate and its observer.  It
accumulates memory accesses into preallocated NumPy ring buffers
(``addr``/``size``/``kind``) and hands the downstream observer whole batches
through :meth:`~repro.trace.observer.TraceObserver.on_mem_batch`.

Flush boundaries
----------------
The buffer is flushed -- i.e. all pending accesses are delivered, in program
order, *before* the boundary event is forwarded -- at:

* function enter and exit (the attributing context must not change
  mid-batch),
* syscall enter and exit,
* thread switches,
* branches,
* run end, and
* buffer full.

Plain op events (``on_op``) do **not** flush by default: the instruction
clock is a sum, so deferring accesses past ops leaves every aggregate --
edges, byte classification, segment start times, totals -- byte-identical.
The one thing it would skew is *per-access timestamps* (re-use lifetime
windows, line-touch times).  Observers whose output depends on those declare
``batch_time_strict = True`` and the transport then flushes before ops too,
trading batch occupancy for scalar-exact clocks.  Order among memory
accesses is always preserved.

Flushes that collected only a handful of accesses (below
:data:`SCALAR_FLUSH_CUTOFF`) are replayed downstream as scalar calls:
vectorisation below that occupancy costs more than it saves, and
control-dense workloads spend most of their flushes there.
"""

from __future__ import annotations

import numpy as np

from repro.trace.events import OpKind
from repro.trace.observer import MEM_READ, MEM_WRITE, BaseObserver, TraceObserver

__all__ = ["DEFAULT_BATCH_SIZE", "SCALAR_FLUSH_CUTOFF", "BatchingTransport"]

#: Default ring-buffer capacity (accesses); matches ``SigilConfig.batch_size``.
DEFAULT_BATCH_SIZE = 4096

#: Flushes holding fewer accesses than this are delivered as plain scalar
#: calls instead of ``on_mem_batch``.  Control-dense workloads flush at
#: every function/branch boundary, so most batches hold only a handful of
#: accesses -- below this occupancy the array kernels' fixed per-batch cost
#: exceeds the whole scalar path, and batching them would *slow the run
#: down*.  Aggregates are identical either way; only the delivery mechanism
#: changes.
SCALAR_FLUSH_CUTOFF = 8


class BatchingTransport(BaseObserver):
    """Accumulate memory accesses and deliver them to ``downstream`` in bulk.

    Parameters
    ----------
    downstream:
        The observer (or :class:`~repro.trace.observer.ObserverPipe`) that
        receives the batches plus all non-memory events.
    batch_size:
        Ring-buffer capacity; the buffer flushes when full and at the
        boundaries documented in the module docstring.
    scalar_cutoff:
        Flushes holding fewer accesses than this are replayed as scalar
        calls (see :data:`SCALAR_FLUSH_CUTOFF`); ``0`` forces every flush
        through ``on_mem_batch``, which the kernel-semantics tests use.

    The arrays passed to ``on_mem_batch`` are views into the ring buffer;
    downstream observers must consume them during the call, not retain them.
    """

    def __init__(
        self,
        downstream: TraceObserver,
        batch_size: int = DEFAULT_BATCH_SIZE,
        scalar_cutoff: int = SCALAR_FLUSH_CUTOFF,
    ):
        if batch_size <= 0:
            raise ValueError("batch_size must be positive (use the scalar "
                             "path directly instead of a 0-sized transport)")
        self.downstream = downstream
        self.batch_size = batch_size
        self.scalar_cutoff = scalar_cutoff
        self.strict_time = bool(getattr(downstream, "batch_time_strict", False))
        self._addrs = np.empty(batch_size, dtype=np.int64)
        self._sizes = np.empty(batch_size, dtype=np.int64)
        self._kinds = np.empty(batch_size, dtype=np.uint8)
        self._n = 0
        # -- transport telemetry (read by record_telemetry) ---------------
        self.flushes = 0
        self.batched_accesses = 0

    # -- buffering ---------------------------------------------------------

    def on_mem_read(self, addr: int, size: int) -> None:
        i = self._n
        self._addrs[i] = addr
        self._sizes[i] = size
        self._kinds[i] = MEM_READ
        self._n = i + 1
        if self._n == self.batch_size:
            self.flush()

    def on_mem_write(self, addr: int, size: int) -> None:
        i = self._n
        self._addrs[i] = addr
        self._sizes[i] = size
        self._kinds[i] = MEM_WRITE
        self._n = i + 1
        if self._n == self.batch_size:
            self.flush()

    def on_mem_batch(self, addrs, sizes, kinds) -> None:
        # Already-batched input (e.g. a chained transport): flush what we
        # hold, then pass the batch straight through.
        self.flush()
        n = len(addrs)
        self.flushes += 1
        self.batched_accesses += n
        self.downstream.on_mem_batch(addrs, sizes, kinds)

    def flush(self) -> None:
        """Deliver all pending accesses downstream, preserving order.

        Short batches (< :data:`SCALAR_FLUSH_CUTOFF`) are replayed as
        scalar ``on_mem_read``/``on_mem_write`` calls -- identical
        semantics, none of the per-batch kernel overhead.
        """
        n = self._n
        if not n:
            return
        self._n = 0
        self.flushes += 1
        self.batched_accesses += n
        if n < self.scalar_cutoff:
            down = self.downstream
            addrs = self._addrs[:n].tolist()
            sizes = self._sizes[:n].tolist()
            for i, kind in enumerate(self._kinds[:n].tolist()):
                if kind == MEM_READ:
                    down.on_mem_read(addrs[i], sizes[i])
                else:
                    down.on_mem_write(addrs[i], sizes[i])
            return
        self.downstream.on_mem_batch(
            self._addrs[:n], self._sizes[:n], self._kinds[:n]
        )

    # -- boundary events (flush, then forward) -----------------------------

    def on_fn_enter(self, name: str) -> None:
        self.flush()
        self.downstream.on_fn_enter(name)

    def on_fn_exit(self, name: str) -> None:
        self.flush()
        self.downstream.on_fn_exit(name)

    def on_op(self, kind: OpKind, count: int) -> None:
        if self.strict_time:
            self.flush()
        self.downstream.on_op(kind, count)

    def on_branch(self, site: int, taken: bool) -> None:
        self.flush()
        self.downstream.on_branch(site, taken)

    def on_syscall_enter(self, name: str, input_bytes: int) -> None:
        self.flush()
        self.downstream.on_syscall_enter(name, input_bytes)

    def on_syscall_exit(self, name: str, output_bytes: int) -> None:
        self.flush()
        self.downstream.on_syscall_exit(name, output_bytes)

    def on_thread_switch(self, tid: int) -> None:
        self.flush()
        self.downstream.on_thread_switch(tid)

    def on_run_begin(self) -> None:
        self.downstream.on_run_begin()

    def on_run_end(self) -> None:
        self.flush()
        self.downstream.on_run_end()

    # -- telemetry ---------------------------------------------------------

    @property
    def mean_occupancy(self) -> float:
        """Average accesses delivered per flush (batch-efficiency signal)."""
        if not self.flushes:
            return 0.0
        return self.batched_accesses / self.flushes

    def record_telemetry(self, telemetry) -> None:
        """Publish transport counters once, after the run (pull-based)."""
        telemetry.gauge("batch.size").set(self.batch_size)
        telemetry.gauge("batch.flushes").set(self.flushes)
        telemetry.gauge("batch.accesses").set(self.batched_accesses)
        telemetry.gauge("batch.mean_occupancy").set(self.mean_occupancy)
        telemetry.gauge("batch.strict_time").set(int(self.strict_time))
