"""Trace primitives: the event stream substrates emit and tools consume."""

from repro.trace.events import (
    Branch,
    FnEnter,
    FnExit,
    MemRead,
    MemWrite,
    Op,
    OpKind,
    SyscallEnter,
    SyscallExit,
    ThreadSwitch,
    TraceEvent,
)
from repro.trace.observer import (
    BaseObserver,
    NullObserver,
    ObserverPipe,
    RecordingObserver,
    TraceObserver,
    replay,
)

__all__ = [
    "Branch",
    "FnEnter",
    "FnExit",
    "MemRead",
    "MemWrite",
    "Op",
    "OpKind",
    "SyscallEnter",
    "SyscallExit",
    "ThreadSwitch",
    "TraceEvent",
    "BaseObserver",
    "NullObserver",
    "ObserverPipe",
    "RecordingObserver",
    "TraceObserver",
    "replay",
]
