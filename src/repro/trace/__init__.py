"""Trace primitives: the event stream substrates emit and tools consume."""

from repro.trace.events import (
    Branch,
    FnEnter,
    FnExit,
    MemRead,
    MemWrite,
    Op,
    OpKind,
    SyscallEnter,
    SyscallExit,
    ThreadSwitch,
    TraceEvent,
)
from repro.trace.batch import DEFAULT_BATCH_SIZE, BatchingTransport
from repro.trace.observer import (
    MEM_READ,
    MEM_WRITE,
    BaseObserver,
    NullObserver,
    ObserverPipe,
    RecordingObserver,
    TraceObserver,
    replay,
)

__all__ = [
    "DEFAULT_BATCH_SIZE",
    "BatchingTransport",
    "MEM_READ",
    "MEM_WRITE",
    "Branch",
    "FnEnter",
    "FnExit",
    "MemRead",
    "MemWrite",
    "Op",
    "OpKind",
    "SyscallEnter",
    "SyscallExit",
    "ThreadSwitch",
    "TraceEvent",
    "BaseObserver",
    "NullObserver",
    "ObserverPipe",
    "RecordingObserver",
    "TraceObserver",
    "replay",
]
