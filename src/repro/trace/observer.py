"""Observer protocol connecting execution substrates to profiling tools.

Substrates call the ``on_*`` methods directly (one virtual call per primitive,
no event-object allocation on the hot path).  The dataclasses in
:mod:`repro.trace.events` exist for persistence and testing; the
:class:`RecordingObserver` converts the method stream back into a list of
event objects when a materialised trace is wanted.
"""

from __future__ import annotations

from typing import Iterable, List, Protocol, runtime_checkable

from repro.trace.events import (
    Branch,
    ThreadSwitch,
    FnEnter,
    FnExit,
    MemRead,
    MemWrite,
    Op,
    OpKind,
    SyscallEnter,
    SyscallExit,
    TraceEvent,
)

__all__ = [
    "MEM_READ",
    "MEM_WRITE",
    "TraceObserver",
    "BaseObserver",
    "NullObserver",
    "ObserverPipe",
    "RecordingObserver",
    "replay",
]

#: Kind codes used in the ``kinds`` array of a memory-access batch.
MEM_READ = 0
MEM_WRITE = 1


def _expand_batch(observer, addrs, sizes, kinds) -> None:
    """Replay a memory-access batch into scalar observer calls, in order."""
    addrs = addrs.tolist() if hasattr(addrs, "tolist") else addrs
    sizes = sizes.tolist() if hasattr(sizes, "tolist") else sizes
    kinds = kinds.tolist() if hasattr(kinds, "tolist") else kinds
    read = observer.on_mem_read
    write = observer.on_mem_write
    for addr, size, kind in zip(addrs, sizes, kinds):
        if kind == MEM_READ:
            read(addr, size)
        else:
            write(addr, size)


def _expand_branch_batch(observer, sites, takens) -> None:
    """Replay a branch batch into scalar ``on_branch`` calls, in order."""
    sites = sites.tolist() if hasattr(sites, "tolist") else sites
    takens = takens.tolist() if hasattr(takens, "tolist") else takens
    branch = observer.on_branch
    for site, taken in zip(sites, takens):
        branch(site, bool(taken))


@runtime_checkable
class TraceObserver(Protocol):
    """Anything that can watch a program execute.

    The paper notes Sigil "can use any framework that identifies
    communicating entities, and exposes addresses and operations to the
    tool"; this protocol is that contract.
    """

    def on_fn_enter(self, name: str) -> None: ...

    def on_fn_exit(self, name: str) -> None: ...

    def on_mem_read(self, addr: int, size: int) -> None: ...

    def on_mem_write(self, addr: int, size: int) -> None: ...

    def on_mem_batch(self, addrs, sizes, kinds) -> None: ...

    def on_op(self, kind: OpKind, count: int) -> None: ...

    def on_branch(self, site: int, taken: bool) -> None: ...

    def on_branch_batch(self, sites, takens) -> None: ...

    def on_syscall_enter(self, name: str, input_bytes: int) -> None: ...

    def on_syscall_exit(self, name: str, output_bytes: int) -> None: ...

    def on_thread_switch(self, tid: int) -> None: ...

    def on_run_begin(self) -> None: ...

    def on_run_end(self) -> None: ...


class BaseObserver:
    """No-op implementation of :class:`TraceObserver`; subclass and override."""

    #: Declares whether this observer's *output* depends on how memory
    #: accesses interleave with op/branch events on the instruction-count
    #: clock (e.g. re-use lifetime timestamps).  The batched transport
    #: (:class:`repro.trace.batch.BatchingTransport`) flushes its buffer
    #: before every op when this is true, so per-access timestamps stay
    #: byte-identical to the scalar path.  Order *among* memory accesses is
    #: always preserved regardless of this flag.
    batch_time_strict: bool = False

    #: Whether batch delivery actually speeds this observer up.  Observers
    #: that can only process batches by scalar expansion (e.g. a shadow
    #: profiler running under a page-eviction cap, where in-batch eviction
    #: order matters) gain nothing from buffering, so the harness skips the
    #: transport when nothing downstream benefits.  Output is byte-identical
    #: either way -- this is purely a performance hint.
    batch_beneficial: bool = True

    #: Opt-in for the transport's run-length side channel.  When true the
    #: transport delivers memory batches through ``on_mem_batch_runs(addrs,
    #: rkeys, rends)`` instead of materialising per-access ``sizes``/``kinds``
    #: arrays: ``addrs`` is the int64 address array, and run ``i`` covers
    #: ``addrs[rends[i-1]:rends[i]]`` with packed key ``rkeys[i] ==
    #: (size << 1) | kind``.  Real access streams are long same-size,
    #: same-kind runs, so the descriptor lists are tiny and the downstream
    #: kernel can derive its counters without touching NumPy at all.
    batch_accepts_runs: bool = False

    def on_fn_enter(self, name: str) -> None:
        pass

    def on_fn_exit(self, name: str) -> None:
        pass

    def on_mem_read(self, addr: int, size: int) -> None:
        pass

    def on_mem_write(self, addr: int, size: int) -> None:
        pass

    def on_mem_batch(self, addrs, sizes, kinds) -> None:
        """A batch of memory accesses, in program order.

        ``addrs``/``sizes``/``kinds`` are parallel sequences (typically
        NumPy array views into the transport's ring buffer -- do not retain
        them past the call).  ``kinds[i]`` is :data:`MEM_READ` or
        :data:`MEM_WRITE`.  The default implementation expands the batch
        back into scalar ``on_mem_read``/``on_mem_write`` calls in order,
        so observers that never heard of batching keep working unchanged;
        batch-aware observers override this with a vectorised kernel.
        """
        _expand_batch(self, addrs, sizes, kinds)

    def on_op(self, kind: OpKind, count: int) -> None:
        pass

    def on_branch(self, site: int, taken: bool) -> None:
        pass

    def on_branch_batch(self, sites, takens) -> None:
        """A batch of branch events, in program order.

        ``sites``/``takens`` are parallel sequences (int64 sites, bool
        outcomes).  The default implementation expands back into scalar
        ``on_branch`` calls; observers with a vectorised predictor override
        it.  Only lenient (``batch_time_strict = False``) observers ever see
        branch batches -- the transport forwards branches scalar, in exact
        stream order, to strict ones.
        """
        _expand_branch_batch(self, sites, takens)

    def on_syscall_enter(self, name: str, input_bytes: int) -> None:
        pass

    def on_syscall_exit(self, name: str, output_bytes: int) -> None:
        pass

    def on_thread_switch(self, tid: int) -> None:
        pass

    def on_run_begin(self) -> None:
        pass

    def on_run_end(self) -> None:
        pass


class NullObserver(BaseObserver):
    """Observer that ignores everything.

    Running a substrate with a ``NullObserver`` is the reproduction's
    equivalent of a *native* run: the program executes with no tool attached,
    which is the baseline for the slowdown characterisation (Figure 4).
    """


class ObserverPipe(BaseObserver):
    """Fan a single trace stream out to several observers, in order.

    This mirrors how Sigil runs *alongside* Callgrind in one process: one
    instrumentation pass feeds both tools.
    """

    def __init__(self, observers: Iterable[TraceObserver]):
        self.observers: List[TraceObserver] = list(observers)

    @property
    def batch_time_strict(self) -> bool:  # type: ignore[override]
        """Strict if any fan-out target needs scalar-exact clock ordering."""
        return any(
            getattr(obs, "batch_time_strict", False) for obs in self.observers
        )

    @property
    def batch_beneficial(self) -> bool:  # type: ignore[override]
        """Batching pays off if it pays off for any fan-out target."""
        return any(
            getattr(obs, "batch_beneficial", True) for obs in self.observers
        )

    def on_mem_batch(self, addrs, sizes, kinds) -> None:
        # Each observer receives the whole batch in order; observers without
        # a batch kernel fall back to scalar expansion via BaseObserver.
        for obs in self.observers:
            hook = getattr(obs, "on_mem_batch", None)
            if hook is not None:
                hook(addrs, sizes, kinds)
            else:  # bare TraceObserver without the batching mixin
                _expand_batch(obs, addrs, sizes, kinds)

    def on_branch_batch(self, sites, takens) -> None:
        for obs in self.observers:
            hook = getattr(obs, "on_branch_batch", None)
            if hook is not None:
                hook(sites, takens)
            else:  # bare TraceObserver without the batching mixin
                _expand_branch_batch(obs, sites, takens)

    def on_fn_enter(self, name: str) -> None:
        for obs in self.observers:
            obs.on_fn_enter(name)

    def on_fn_exit(self, name: str) -> None:
        for obs in self.observers:
            obs.on_fn_exit(name)

    def on_mem_read(self, addr: int, size: int) -> None:
        for obs in self.observers:
            obs.on_mem_read(addr, size)

    def on_mem_write(self, addr: int, size: int) -> None:
        for obs in self.observers:
            obs.on_mem_write(addr, size)

    def on_op(self, kind: OpKind, count: int) -> None:
        for obs in self.observers:
            obs.on_op(kind, count)

    def on_branch(self, site: int, taken: bool) -> None:
        for obs in self.observers:
            obs.on_branch(site, taken)

    def on_syscall_enter(self, name: str, input_bytes: int) -> None:
        for obs in self.observers:
            obs.on_syscall_enter(name, input_bytes)

    def on_syscall_exit(self, name: str, output_bytes: int) -> None:
        for obs in self.observers:
            obs.on_syscall_exit(name, output_bytes)

    def on_thread_switch(self, tid: int) -> None:
        for obs in self.observers:
            obs.on_thread_switch(tid)

    def on_run_begin(self) -> None:
        for obs in self.observers:
            obs.on_run_begin()

    def on_run_end(self) -> None:
        for obs in self.observers:
            obs.on_run_end()


class RecordingObserver(BaseObserver):
    """Materialise the trace as a list of event objects (tests, replays).

    A recorded trace preserves the exact scalar event order, so the recorder
    is *time strict*: a batching transport must not let op/branch events
    overtake buffered memory accesses on their way here.  Batches themselves
    are expanded back to one :class:`MemRead`/:class:`MemWrite` per access
    (the inherited scalar expansion), keeping recorded traces
    representation-independent.
    """

    batch_time_strict = True

    def __init__(self) -> None:
        self.events: List[TraceEvent] = []

    def on_fn_enter(self, name: str) -> None:
        self.events.append(FnEnter(name))

    def on_fn_exit(self, name: str) -> None:
        self.events.append(FnExit(name))

    def on_mem_read(self, addr: int, size: int) -> None:
        self.events.append(MemRead(addr, size))

    def on_mem_write(self, addr: int, size: int) -> None:
        self.events.append(MemWrite(addr, size))

    def on_op(self, kind: OpKind, count: int) -> None:
        self.events.append(Op(kind, count))

    def on_branch(self, site: int, taken: bool) -> None:
        self.events.append(Branch(site, taken))

    def on_syscall_enter(self, name: str, input_bytes: int) -> None:
        self.events.append(SyscallEnter(name, input_bytes))

    def on_syscall_exit(self, name: str, output_bytes: int) -> None:
        self.events.append(SyscallExit(name, output_bytes))

    def on_thread_switch(self, tid: int) -> None:
        self.events.append(ThreadSwitch(tid))


def replay(
    events: Iterable[TraceEvent],
    observer: TraceObserver,
    *,
    batch_size: int = 0,
) -> None:
    """Replay a materialised trace into an observer.

    The paper promises to "release the profile data for many commonly used
    benchmarks ... researchers can use the data without running Sigil";
    ``replay`` is the mechanism that makes a stored trace equivalent to a
    live run.

    With ``batch_size > 0`` the replay goes through a
    :class:`repro.trace.batch.BatchingTransport`, so stored traces exercise
    exactly the batched transport live substrates use (memory accesses are
    accumulated and delivered via ``on_mem_batch`` at flush boundaries).
    The observed profile is identical either way.
    """
    if batch_size:
        from repro.trace.batch import BatchingTransport

        observer = BatchingTransport(observer, batch_size)
    observer.on_run_begin()
    for ev in events:
        if isinstance(ev, MemRead):
            observer.on_mem_read(ev.addr, ev.size)
        elif isinstance(ev, MemWrite):
            observer.on_mem_write(ev.addr, ev.size)
        elif isinstance(ev, Op):
            observer.on_op(ev.kind, ev.count)
        elif isinstance(ev, FnEnter):
            observer.on_fn_enter(ev.name)
        elif isinstance(ev, FnExit):
            observer.on_fn_exit(ev.name)
        elif isinstance(ev, Branch):
            observer.on_branch(ev.site, ev.taken)
        elif isinstance(ev, SyscallEnter):
            observer.on_syscall_enter(ev.name, ev.input_bytes)
        elif isinstance(ev, SyscallExit):
            observer.on_syscall_exit(ev.name, ev.output_bytes)
        elif isinstance(ev, ThreadSwitch):
            observer.on_thread_switch(ev.tid)
        else:  # pragma: no cover - defensive
            raise TypeError(f"unknown trace event: {ev!r}")
    observer.on_run_end()
