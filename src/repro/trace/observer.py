"""Observer protocol connecting execution substrates to profiling tools.

Substrates call the ``on_*`` methods directly (one virtual call per primitive,
no event-object allocation on the hot path).  The dataclasses in
:mod:`repro.trace.events` exist for persistence and testing; the
:class:`RecordingObserver` converts the method stream back into a list of
event objects when a materialised trace is wanted.
"""

from __future__ import annotations

from typing import Iterable, List, Protocol, runtime_checkable

from repro.trace.events import (
    Branch,
    ThreadSwitch,
    FnEnter,
    FnExit,
    MemRead,
    MemWrite,
    Op,
    OpKind,
    SyscallEnter,
    SyscallExit,
    TraceEvent,
)

__all__ = [
    "TraceObserver",
    "BaseObserver",
    "NullObserver",
    "ObserverPipe",
    "RecordingObserver",
    "replay",
]


@runtime_checkable
class TraceObserver(Protocol):
    """Anything that can watch a program execute.

    The paper notes Sigil "can use any framework that identifies
    communicating entities, and exposes addresses and operations to the
    tool"; this protocol is that contract.
    """

    def on_fn_enter(self, name: str) -> None: ...

    def on_fn_exit(self, name: str) -> None: ...

    def on_mem_read(self, addr: int, size: int) -> None: ...

    def on_mem_write(self, addr: int, size: int) -> None: ...

    def on_op(self, kind: OpKind, count: int) -> None: ...

    def on_branch(self, site: int, taken: bool) -> None: ...

    def on_syscall_enter(self, name: str, input_bytes: int) -> None: ...

    def on_syscall_exit(self, name: str, output_bytes: int) -> None: ...

    def on_thread_switch(self, tid: int) -> None: ...

    def on_run_begin(self) -> None: ...

    def on_run_end(self) -> None: ...


class BaseObserver:
    """No-op implementation of :class:`TraceObserver`; subclass and override."""

    def on_fn_enter(self, name: str) -> None:
        pass

    def on_fn_exit(self, name: str) -> None:
        pass

    def on_mem_read(self, addr: int, size: int) -> None:
        pass

    def on_mem_write(self, addr: int, size: int) -> None:
        pass

    def on_op(self, kind: OpKind, count: int) -> None:
        pass

    def on_branch(self, site: int, taken: bool) -> None:
        pass

    def on_syscall_enter(self, name: str, input_bytes: int) -> None:
        pass

    def on_syscall_exit(self, name: str, output_bytes: int) -> None:
        pass

    def on_thread_switch(self, tid: int) -> None:
        pass

    def on_run_begin(self) -> None:
        pass

    def on_run_end(self) -> None:
        pass


class NullObserver(BaseObserver):
    """Observer that ignores everything.

    Running a substrate with a ``NullObserver`` is the reproduction's
    equivalent of a *native* run: the program executes with no tool attached,
    which is the baseline for the slowdown characterisation (Figure 4).
    """


class ObserverPipe(BaseObserver):
    """Fan a single trace stream out to several observers, in order.

    This mirrors how Sigil runs *alongside* Callgrind in one process: one
    instrumentation pass feeds both tools.
    """

    def __init__(self, observers: Iterable[TraceObserver]):
        self.observers: List[TraceObserver] = list(observers)

    def on_fn_enter(self, name: str) -> None:
        for obs in self.observers:
            obs.on_fn_enter(name)

    def on_fn_exit(self, name: str) -> None:
        for obs in self.observers:
            obs.on_fn_exit(name)

    def on_mem_read(self, addr: int, size: int) -> None:
        for obs in self.observers:
            obs.on_mem_read(addr, size)

    def on_mem_write(self, addr: int, size: int) -> None:
        for obs in self.observers:
            obs.on_mem_write(addr, size)

    def on_op(self, kind: OpKind, count: int) -> None:
        for obs in self.observers:
            obs.on_op(kind, count)

    def on_branch(self, site: int, taken: bool) -> None:
        for obs in self.observers:
            obs.on_branch(site, taken)

    def on_syscall_enter(self, name: str, input_bytes: int) -> None:
        for obs in self.observers:
            obs.on_syscall_enter(name, input_bytes)

    def on_syscall_exit(self, name: str, output_bytes: int) -> None:
        for obs in self.observers:
            obs.on_syscall_exit(name, output_bytes)

    def on_thread_switch(self, tid: int) -> None:
        for obs in self.observers:
            obs.on_thread_switch(tid)

    def on_run_begin(self) -> None:
        for obs in self.observers:
            obs.on_run_begin()

    def on_run_end(self) -> None:
        for obs in self.observers:
            obs.on_run_end()


class RecordingObserver(BaseObserver):
    """Materialise the trace as a list of event objects (tests, replays)."""

    def __init__(self) -> None:
        self.events: List[TraceEvent] = []

    def on_fn_enter(self, name: str) -> None:
        self.events.append(FnEnter(name))

    def on_fn_exit(self, name: str) -> None:
        self.events.append(FnExit(name))

    def on_mem_read(self, addr: int, size: int) -> None:
        self.events.append(MemRead(addr, size))

    def on_mem_write(self, addr: int, size: int) -> None:
        self.events.append(MemWrite(addr, size))

    def on_op(self, kind: OpKind, count: int) -> None:
        self.events.append(Op(kind, count))

    def on_branch(self, site: int, taken: bool) -> None:
        self.events.append(Branch(site, taken))

    def on_syscall_enter(self, name: str, input_bytes: int) -> None:
        self.events.append(SyscallEnter(name, input_bytes))

    def on_syscall_exit(self, name: str, output_bytes: int) -> None:
        self.events.append(SyscallExit(name, output_bytes))

    def on_thread_switch(self, tid: int) -> None:
        self.events.append(ThreadSwitch(tid))


def replay(events: Iterable[TraceEvent], observer: TraceObserver) -> None:
    """Replay a materialised trace into an observer.

    The paper promises to "release the profile data for many commonly used
    benchmarks ... researchers can use the data without running Sigil";
    ``replay`` is the mechanism that makes a stored trace equivalent to a
    live run.
    """
    observer.on_run_begin()
    for ev in events:
        if isinstance(ev, MemRead):
            observer.on_mem_read(ev.addr, ev.size)
        elif isinstance(ev, MemWrite):
            observer.on_mem_write(ev.addr, ev.size)
        elif isinstance(ev, Op):
            observer.on_op(ev.kind, ev.count)
        elif isinstance(ev, FnEnter):
            observer.on_fn_enter(ev.name)
        elif isinstance(ev, FnExit):
            observer.on_fn_exit(ev.name)
        elif isinstance(ev, Branch):
            observer.on_branch(ev.site, ev.taken)
        elif isinstance(ev, SyscallEnter):
            observer.on_syscall_enter(ev.name, ev.input_bytes)
        elif isinstance(ev, SyscallExit):
            observer.on_syscall_exit(ev.name, ev.output_bytes)
        elif isinstance(ev, ThreadSwitch):
            observer.on_thread_switch(ev.tid)
        else:  # pragma: no cover - defensive
            raise TypeError(f"unknown trace event: {ev!r}")
    observer.on_run_end()
