"""Trace event model shared by every execution substrate and every observer.

The paper's Sigil hooks into Callgrind, which in turn sits on Valgrind's
dynamic binary instrumentation.  Valgrind reduces the program to a stream of
primitives -- function entries/exits, memory accesses, and operations.  This
module defines that primitive stream for the reproduction: both substrates
(the mini-VM in :mod:`repro.vm` and the traced-Python runtime in
:mod:`repro.runtime`) emit these events, and every tool (the Callgrind
equivalent in :mod:`repro.callgrind`, Sigil itself in :mod:`repro.core`)
consumes them through the :class:`repro.trace.observer.TraceObserver`
protocol.

Memory accesses are expressed as *ranges* (``addr``, ``size``) rather than
per-byte events.  Sigil's methodology is byte-granular; the range form is
purely a transport optimisation that lets the shadow memory vectorise the
per-byte work.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = [
    "OpKind",
    "TraceEvent",
    "FnEnter",
    "FnExit",
    "MemRead",
    "MemWrite",
    "Op",
    "Branch",
    "SyscallEnter",
    "SyscallExit",
    "ThreadSwitch",
]


class OpKind(enum.Enum):
    """Classes of computational operations counted by the substrate.

    Callgrind was "minimally modified to insert calls to Sigil and ... log
    floating point and integer operations" (paper, section III).  We keep the
    same two classes.
    """

    INT = "int"
    FLOAT = "float"


@dataclass(frozen=True, slots=True)
class TraceEvent:
    """Base class for all trace events."""


@dataclass(frozen=True, slots=True)
class FnEnter(TraceEvent):
    """Control entered a function.

    Parameters
    ----------
    name:
        The function's symbol name (e.g. ``"conv_gen"``).  Names need not be
        unique across a program; Sigil distinguishes calling contexts itself.
    """

    name: str


@dataclass(frozen=True, slots=True)
class FnExit(TraceEvent):
    """Control returned from the named function to its caller."""

    name: str


@dataclass(frozen=True, slots=True)
class MemRead(TraceEvent):
    """The current function read ``size`` bytes starting at ``addr``."""

    addr: int
    size: int


@dataclass(frozen=True, slots=True)
class MemWrite(TraceEvent):
    """The current function wrote ``size`` bytes starting at ``addr``."""

    addr: int
    size: int


@dataclass(frozen=True, slots=True)
class Op(TraceEvent):
    """The current function performed ``count`` operations of kind ``kind``.

    Operations are the platform-independent unit of computation cost: Sigil
    sums them per function ("the number of operations in the function") and
    the critical-path analysis uses them as node self-costs.
    """

    kind: OpKind
    count: int = 1


@dataclass(frozen=True, slots=True)
class Branch(TraceEvent):
    """A conditional branch executed in the current function.

    ``taken`` is the resolved direction; the Callgrind-equivalent observer
    feeds it to a branch predictor to estimate mispredictions, one of the
    inputs of the cycle-estimation formula.
    """

    site: int
    taken: bool


@dataclass(frozen=True, slots=True)
class ThreadSwitch(TraceEvent):
    """Execution moved to (virtual) thread ``tid``.

    The paper treats threads as first-class communicating entities but
    evaluates serial binaries only; this event is the hook that lets the
    tools follow interleaved multi-threaded traces (per-thread call stacks,
    cross-thread data edges).  Substrates that never emit it are plain
    serial programs on thread 0.
    """

    tid: int


@dataclass(frozen=True, slots=True)
class SyscallEnter(TraceEvent):
    """Entry into a system call.

    System calls "are not completely visible to Valgrind" (section III):
    Sigil records the name and the I/O byte counts but cannot observe memory
    traffic inside the call.  Substrates therefore report input/output byte
    totals explicitly on the boundary events instead of emitting MemRead /
    MemWrite from inside the call.
    """

    name: str
    input_bytes: int = 0


@dataclass(frozen=True, slots=True)
class SyscallExit(TraceEvent):
    """Exit from a system call, reporting bytes it produced for the caller."""

    name: str
    output_bytes: int = 0
