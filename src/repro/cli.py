"""Command-line interface: profile, inspect and post-process workloads.

The released Sigil ships as a tool plus post-processing scripts; this module
is that surface for the reproduction::

    repro list
    repro list --json
    repro profile vips --reuse --events -o vips.profile --events-out vips.events
    repro profile vips --events-out vips.events --events-format text
    repro profile vips --telemetry --heartbeat 100000
    repro report vips.profile --top 10
    repro partition blackscholes --bandwidth 8
    repro reuse vips --function conv_gen
    repro critpath vips.events
    repro critpath streamcluster --cores 1,2,4,8
    repro trace vips.events --format chrome -o vips.trace.json
    repro trace vips.profile --format collapsed --weight unique_in
    repro stats vips-simsmall.manifest.json
    repro campaign run --workloads vips,dedup --sizes simsmall,simmedium -j 4
    repro campaign status sweep
    repro campaign resume sweep -j 4
    repro serve --port 8787 --store /var/lib/repro
    repro submit blackscholes --tool native --url http://127.0.0.1:8787
    repro watch job-000001 --url http://127.0.0.1:8787
    repro metrics --url http://127.0.0.1:8787

The ``campaign`` family executes whole sweep matrices in parallel worker
processes against a shared on-disk result store (see
:mod:`repro.campaign`); re-running a campaign recomputes nothing that the
store already holds, and an interrupted campaign picks up where it stopped
with ``resume``.

The ``serve`` family turns that engine into a long-running daemon
(:mod:`repro.serve`): ``serve`` hosts it, ``submit`` posts jobs over HTTP,
``watch`` follows a job's sequence-numbered event trace (file tail or live
SSE), and ``metrics`` scrapes the daemon's Prometheus endpoint.

Commands accepting a workload name run it live; ``report``/``critpath`` also
accept files produced by ``profile``, supporting the paper's offline model.
Workload-running commands take the shared telemetry/logging flags
(``--telemetry``/``--no-telemetry``, ``--manifest-out``, ``--heartbeat``,
``-v``/``-q``); telemetry-enabled runs write a JSON manifest that ``repro
stats`` renders and compares.
"""

from __future__ import annotations

import argparse
import json
import logging
import math
import shlex
import sys
from pathlib import Path
from typing import List, Optional

from repro.analysis import (
    CDFG,
    render_calltree,
    analyze_critical_path,
    events_to_dot,
    byte_reuse_breakdown,
    coverage_report,
    lifetime_histogram,
    render_barchart,
    render_histogram,
    render_table,
    top_reuse_functions,
    top_unique_contributors,
    trim_calltree,
)
from repro.analysis.partition import BusModel, PartitionPolicy
from repro.analysis.schedule import speedup_curve
from repro.analysis.windowed import DEFAULT_WINDOW_OPS
from repro.core import SigilConfig
from repro.harness import profile_workload
from repro.io import (
    dump_callgrind,
    dump_events,
    dump_events_bin,
    dump_profile,
    load_callgrind,
    load_event_arrays,
    load_profile,
)
from repro.io.tracefmt import COLLAPSED_WEIGHTS as _COLLAPSED_WEIGHTS
from repro.telemetry import Manifest, Telemetry, build_manifest
from repro.workloads import ALL_NAMES, WORKLOADS, InputSize

__all__ = ["main", "build_parser"]

log = logging.getLogger("repro.cli")


def _fmt_be(value: float) -> str:
    return f"{value:.3f}" if math.isfinite(value) else "inf"


# ---------------------------------------------------------------------------
# logging + telemetry plumbing
# ---------------------------------------------------------------------------


class _StderrHandler(logging.StreamHandler):
    """Stream handler that re-resolves ``sys.stderr`` on every record.

    Tests (and shells) swap ``sys.stderr``; binding the stream at handler
    construction would silently write into the dead object.
    """

    @property
    def stream(self):
        return sys.stderr

    @stream.setter
    def stream(self, value):  # StreamHandler.__init__ assigns; ignore it
        pass


class _LevelFormatter(logging.Formatter):
    """Formats ``error: message`` style lines (lowercase level names)."""

    def format(self, record: logging.LogRecord) -> str:
        prefix = record.levelname.lower()
        return f"{prefix}: {record.getMessage()}"


def _setup_logging(verbosity: int) -> None:
    """Configure the ``repro.*`` logger namespace from ``-v``/``-q`` counts."""
    root = logging.getLogger("repro")
    if verbosity >= 2:
        level = logging.DEBUG
    elif verbosity == 1:
        level = logging.INFO
    elif verbosity == 0:
        level = logging.WARNING
    else:
        level = logging.ERROR
    root.setLevel(level)
    if not any(isinstance(h, _StderrHandler) for h in root.handlers):
        handler = _StderrHandler()
        handler.setFormatter(_LevelFormatter())
        root.addHandler(handler)
    root.propagate = False


def _telemetry_from(args) -> Optional[Telemetry]:
    """Build this invocation's telemetry session (None when disabled).

    Telemetry is on by default -- the run measures itself -- and disabled
    with ``--no-telemetry``, which restores the seed observer fan-out with
    zero additional Python-level calls per event.
    """
    if getattr(args, "no_telemetry", False):
        return None
    return Telemetry(
        heartbeat_events=getattr(args, "heartbeat", None),
        heartbeat_seconds=getattr(args, "heartbeat_secs", None),
    )


def _manifest_path(args, *, default_stem: str) -> Optional[Path]:
    """Where this run's manifest belongs, or None to skip writing.

    Priority: an explicit ``--manifest-out``; else next to ``-o`` output;
    else (only with an explicit ``--telemetry``) ``<stem>.manifest.json`` in
    the working directory.
    """
    manifest_out = getattr(args, "manifest_out", None)
    if manifest_out:
        return Path(manifest_out)
    output = getattr(args, "output", None)
    if output:
        return Path(f"{output}.manifest.json")
    if getattr(args, "telemetry", False):
        return Path(f"{default_stem}.manifest.json")
    return None


def _emit_manifest(args, manifest: Optional[Manifest], *, default_stem: str) -> None:
    """Write the run manifest when the flags ask for one."""
    if manifest is None:
        return
    path = _manifest_path(args, default_stem=default_stem)
    if path is None:
        return
    argv = getattr(args, "_argv", None)
    manifest.command = " ".join(argv) if argv else args.command
    manifest.write(path)
    print(f"manifest written to {path}")


# ---------------------------------------------------------------------------
# subcommands
# ---------------------------------------------------------------------------


def cmd_list(args) -> int:
    if getattr(args, "json", False):
        from repro.harness import TOOL_STACKS

        payload = {
            "workloads": [
                {
                    "name": name,
                    "suite": WORKLOADS[name].suite,
                    "description": WORKLOADS[name].description,
                    "sizes": sorted(
                        s.value for s in WORKLOADS[name].PARAMS
                    ),
                }
                for name in ALL_NAMES
            ],
            "sizes": [s.value for s in InputSize],
            "tools": list(TOOL_STACKS),
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    rows = [
        (name, WORKLOADS[name].suite, WORKLOADS[name].description)
        for name in ALL_NAMES
    ]
    print(render_table(["workload", "suite", "description"], rows))
    print(f"\nsizes: {', '.join(s.value for s in InputSize)}")
    return 0


def _batch_size_from(args) -> int:
    """Resolve the transport mode flags: --no-batch wins, then --batch-size."""
    if getattr(args, "no_batch", False):
        return 0
    return getattr(args, "batch_size", None) or SigilConfig().batch_size


def _write_events(args, events, path) -> None:
    """Write an event file in the format ``--events-format`` selected.

    Binary v2 is the default (columnar, chunked, compressed -- see
    docs/file-formats.md); ``--events-format text`` keeps the line-oriented
    v1 for hand-inspection and diffing.  Every reader sniffs the version.
    """
    if getattr(args, "events_format", "bin") == "text":
        dump_events(events, path)
    else:
        dump_events_bin(events, path)


def _run(args, *, reuse: bool = False, events: bool = False):
    # Asking for an event-file or trace output implies collecting events.
    events = events or bool(
        getattr(args, "events_out", None) or getattr(args, "trace_out", None)
    )
    config = SigilConfig(
        reuse_mode=reuse or getattr(args, "reuse", False),
        event_mode=events or getattr(args, "events", False),
        line_size=getattr(args, "line_size", 1),
        max_shadow_pages=getattr(args, "max_shadow_pages", None),
        batch_size=_batch_size_from(args),
    )
    return profile_workload(
        args.workload, args.size, config=config, telemetry=_telemetry_from(args)
    )


def cmd_profile(args) -> int:
    run = _run(args)
    profile = run.sigil
    print(
        f"{run.name} ({run.size.value}): {profile.total_time} instructions, "
        f"{len(profile.contexts())} contexts, {len(profile.comm)} edges, "
        f"shadow {profile.shadow_stats.shadow_bytes // 1024} KB, "
        f"{run.wall_seconds:.2f}s wall"
    )
    if run.manifest is not None:
        print(
            f"phases: setup {run.setup_seconds:.2f}s, "
            f"execute {run.execute_seconds:.2f}s, "
            f"aggregate {run.aggregate_seconds:.2f}s; "
            f"{run.manifest.events_total:,} events "
            f"({run.manifest.events_per_sec:,.0f} ev/s)"
        )
    if args.output:
        dump_profile(profile, args.output)
        print(f"profile written to {args.output}")
    if args.events_out:
        _write_events(args, profile.events, args.events_out)
        print(f"event file written to {args.events_out}")
    if args.callgrind_out:
        dump_callgrind(run.callgrind, args.callgrind_out)
        print(f"callgrind profile written to {args.callgrind_out}")
    if args.trace_out:
        run.write_trace(args.trace_out)
        print(f"chrome trace written to {args.trace_out} "
              "(open in ui.perfetto.dev)")
    _emit_manifest(
        args, run.manifest, default_stem=f"{run.name}-{run.size.value}"
    )
    if not (args.output or args.events_out or args.callgrind_out
            or args.trace_out):
        _print_summary(profile, args.top)
    return 0


def _print_summary(profile, top: int) -> None:
    cdfg = CDFG(profile)
    rows = []
    ranked = sorted(
        profile.contexts(), key=lambda n: profile.fn_comm(n.id).ops, reverse=True
    )
    for node in ranked[:top]:
        comm = profile.fn_comm(node.id)
        rows.append((
            cdfg.label(node.id),
            node.calls,
            comm.ops,
            profile.unique_input_bytes(node.id),
            profile.unique_output_bytes(node.id),
            profile.unique_local_bytes(node.id),
        ))
    print()
    print(render_table(
        ["context", "calls", "ops", "uniq_in_B", "uniq_out_B", "local_B"],
        rows,
        title=f"top {min(top, len(ranked))} contexts by operations",
    ))


def cmd_report(args) -> int:
    profile = load_profile(args.profile)
    _print_summary(profile, args.top)
    if args.tree:
        print()
        print(render_calltree(profile))
    cdfg = CDFG(profile)
    edges = sorted(
        cdfg.data_edges(), key=lambda e: e.unique_bytes, reverse=True
    )[: args.top]
    rows = [
        (cdfg.label(e.writer), cdfg.label(e.reader), e.unique_bytes, e.nonunique_bytes)
        for e in edges
    ]
    print()
    print(render_table(
        ["producer", "consumer", "unique_B", "nonunique_B"],
        rows,
        title=f"top {len(rows)} data edges by unique bytes",
    ))
    if args.dot:
        Path(args.dot).write_text(cdfg.to_dot(max_nodes=args.top))
        print(f"\nCDFG written to {args.dot} (graphviz)")
    if args.kcachegrind:
        from repro.io import export_sigil

        export_sigil(profile, args.kcachegrind)
        print(f"\ncallgrind-format file written to {args.kcachegrind} "
              "(open in kcachegrind)")
    return 0


def cmd_partition(args) -> int:
    if args.profile and args.callgrind:
        sigil = load_profile(args.profile)
        callgrind = load_callgrind(args.callgrind)
        name = Path(args.profile).stem
    else:
        run = _run(args)
        sigil, callgrind, name = run.sigil, run.callgrind, run.name
    policy = PartitionPolicy(bus=BusModel(bytes_per_cycle=args.bandwidth))
    trimmed = trim_calltree(sigil, callgrind, policy)
    report = coverage_report(name, trimmed)
    print(
        f"{name}: {report.n_candidates} candidates cover "
        f"{report.coverage:.0%} of estimated execution time\n"
    )
    rows = [
        (c.name, _fmt_be(c.breakeven), c.costs.ops,
         c.costs.unique_input_bytes, c.costs.unique_output_bytes)
        for c in trimmed.sorted_candidates()[: args.top]
    ]
    print(render_table(
        ["function", "S(breakeven)", "incl_ops", "uniq_in_B", "uniq_out_B"],
        rows,
        title="acceleration candidates by breakeven speedup (Eq. 1)",
    ))
    return 0


def cmd_reuse(args) -> int:
    run = _run(args, reuse=True)
    profile = run.sigil
    breakdown = byte_reuse_breakdown(profile)
    print(render_barchart(
        {k: 100 * v for k, v in breakdown.items()},
        title=f"{run.name}: % of data bytes by re-use count",
        fmt="{:.1f}%",
    ))
    rankings = top_reuse_functions(profile, n=args.top)
    if rankings:
        rows = [
            (r.label, r.reused_windows, r.reuse_accesses,
             f"{r.average_lifetime:.0f}")
            for r in rankings
        ]
        print()
        print(render_table(
            ["function", "reused_windows", "re-reads", "avg_lifetime"],
            rows,
            title="top re-using functions",
        ))
    print()
    print("top unique-byte contributors:")
    for label, volume, share in top_unique_contributors(profile, n=5):
        print(f"  {label:24s} {volume:>10} B  ({share:.1%})")
    if args.function:
        matches = [
            node for node in profile.contexts()
            if node.name == args.function
        ]
        if not matches:
            log.error("function %r not found", args.function)
            return 2
        for node in matches:
            hist = lifetime_histogram(profile, node.id)
            print()
            print(render_histogram(
                hist,
                title=f"re-use lifetime histogram: {args.function} "
                      f"(context {'/'.join(node.path)})",
            ))
    if args.mrc:
        from repro.core import ReuseDistanceProfiler
        from repro.workloads import get_workload

        distance = ReuseDistanceProfiler(64)
        get_workload(args.workload, args.size).run(distance)
        rows = [
            (capacity, f"{capacity * 64 // 1024} KB", f"{ratio:.4f}")
            for capacity, ratio in distance.miss_ratio_curve(
                [2 ** k for k in range(2, 14)]
            )
        ]
        print()
        print(render_table(
            ["capacity_lines", "capacity", "predicted_miss_ratio"],
            rows,
            title="miss-ratio curve from LRU stack distances (64B lines)",
        ))
    _emit_manifest(
        args, run.manifest, default_stem=f"{run.name}-{run.size.value}-reuse"
    )
    return 0


def cmd_run(args) -> int:
    """Assemble and profile a user program (see repro.vm.asm for syntax)."""
    from repro.callgrind import CallgrindCollector
    from repro.core import SigilProfiler
    from repro.harness import _assemble_observer
    from repro.telemetry import NULL_TELEMETRY
    from repro.vm import Machine
    from repro.vm.asm import assemble

    tel = _telemetry_from(args)
    tel = tel if tel is not None else NULL_TELEMETRY
    config = SigilConfig(
        reuse_mode=args.reuse,
        event_mode=args.events or bool(args.events_out),
        batch_size=_batch_size_from(args),
    )
    with tel.phase("setup"):
        text = Path(args.program).read_text()
        program = assemble(text, entry=args.entry)
        sigil = SigilProfiler(config)
        callgrind = CallgrindCollector()
        observer, counter = _assemble_observer(
            [sigil, callgrind], tel, Path(args.program).name
        )
    with tel.phase("execute"):
        result = Machine(telemetry=tel).run(
            program, observer, batch_size=config.batch_size
        )
    with tel.phase("aggregate"):
        profile = sigil.profile()
    manifest = None
    if tel.enabled:
        sigil.record_telemetry(tel)
        callgrind.record_telemetry(tel)
        counter.publish(tel)
        tel.record_process_stats()
        manifest = build_manifest(
            workload=Path(args.program).name,
            size="program",
            config=config,
            phases=tel.timers.snapshot(),
            spans=tel.timers.spans(),
            metrics=tel.metrics.snapshot(),
            events_total=counter.total,
            execute_seconds=tel.timers.seconds("execute"),
        )
    print(
        f"{args.program}: returned {result.value!r}, "
        f"{result.instructions} instructions, "
        f"{len(profile.contexts())} contexts"
    )
    if args.output:
        dump_profile(profile, args.output)
        print(f"profile written to {args.output}")
    if args.events_out:
        _write_events(args, profile.events, args.events_out)
        print(f"event file written to {args.events_out}")
    _emit_manifest(args, manifest, default_stem=Path(args.program).stem)
    _print_summary(profile, args.top)
    trimmed = trim_calltree(profile, callgrind.profile)
    rows = [
        (c.name, _fmt_be(c.breakeven), c.costs.ops, c.costs.unique_comm_bytes)
        for c in trimmed.sorted_candidates()[: args.top]
    ]
    if rows:
        print()
        print(render_table(
            ["function", "S(breakeven)", "incl_ops", "unique_comm_B"],
            rows,
            title="acceleration candidates",
        ))
    return 0


def cmd_figures(args) -> int:
    """Regenerate every paper table/figure (runs the benchmark harness)."""
    import pytest as _pytest

    bench_dir = Path(__file__).resolve().parent.parent.parent / "benchmarks"
    if not bench_dir.exists():
        log.error(
            "benchmarks/ not found next to the package; run from a "
            "source checkout"
        )
        return 2
    pytest_args = [str(bench_dir), "--benchmark-only", "-q"]
    if args.only:
        pytest_args += ["-k", args.only]
    code = _pytest.main(pytest_args)
    results = bench_dir / "results"
    if results.exists():
        print(f"\nartifacts in {results}:")
        for path in sorted(results.glob("*.txt")):
            print(f"  {path.name}")
    return int(code)


def cmd_diff(args) -> int:
    """Compare two saved profiles (callgrind_diff analogue)."""
    from repro.analysis import diff_profiles

    baseline = load_profile(args.baseline)
    subject = load_profile(args.subject)
    diff = diff_profiles(baseline, subject)
    print(
        f"total ops: {diff.total_ops[0]} -> {diff.total_ops[1]} "
        f"({diff.ops_ratio:.2f}x)"
    )
    rows = []
    for d in diff.by_ops_change(args.top):
        rows.append((
            "/".join(d.path),
            f"{d.calls[0]}->{d.calls[1]}",
            f"{d.ops[0]}->{d.ops[1]}",
            f"{d.ops_delta:+d}",
            f"{d.unique_input[0]}->{d.unique_input[1]}",
        ))
    print()
    print(render_table(
        ["context", "calls", "ops", "ops_delta", "uniq_in_B"],
        rows,
        title=f"top {len(rows)} contexts by |ops change|",
    ))
    appeared = diff.appeared()
    gone = diff.disappeared()
    if appeared:
        print("\nonly in subject: " + ", ".join("/".join(d.path) for d in appeared))
    if gone:
        print("\nonly in baseline: " + ", ".join("/".join(d.path) for d in gone))
    return 0


def cmd_critpath(args) -> int:
    tree = None
    if Path(args.target).exists():
        if args.dot:
            # Rendering needs the segment objects anyway; load them once.
            events = load_event_arrays(args.target)
        else:
            # Out-of-core: the analyses stream the file chunk-at-a-time
            # (v1 text parses once under the same interface).
            from repro.analysis.streaming import ChunkSource

            events = ChunkSource(args.target)
        name = Path(args.target).stem
    else:
        if args.target not in WORKLOADS:
            log.error(
                "%r is neither an event file nor a workload name", args.target
            )
            return 2
        args.workload = args.target
        run = _run(args, events=True)
        events = run.sigil.events
        tree = run.sigil.tree
        name = run.name
    result = analyze_critical_path(events, telemetry=_telemetry_from(args))
    print(f"{name}: serial {result.serial_length} ops, "
          f"critical path {result.critical_length} ops")
    if args.dot:
        Path(args.dot).write_text(events_to_dot(events, tree, result))
        print(f"dependency-chain graph written to {args.dot} (graphviz)")
    print(f"maximum function-level parallelism: {result.max_parallelism:.2f}")
    if tree is not None:
        chain = " -> ".join(result.path_functions(tree))
        print(f"critical chain (leaf to main): {chain}")
    if args.cores:
        cores = [int(c) for c in args.cores.split(",")]
        print()
        rows = [
            (r.n_cores, r.makespan, f"{r.speedup:.2f}",
             f"{r.efficiency:.2f}", r.cross_core_bytes)
            for r in speedup_curve(events, cores)
        ]
        print(render_table(
            ["cores", "makespan", "speedup", "efficiency", "cross_core_B"],
            rows,
            title="list-scheduled speedup (achievable, vs. theoretical limit)",
        ))
    return 0


def _fmt_metric_value(value) -> str:
    """Render one manifest metric; histogram summaries become one line.

    Histograms snapshot as dicts (count/sum/min/max/mean plus the p50/p90/
    p99 estimates); everything else prints as-is.
    """
    if isinstance(value, dict) and "count" in value:
        if not value.get("count"):
            return "count=0"
        parts = [f"count={value['count']}"]
        for key in ("mean", "p50", "p90", "p99"):
            v = value.get(key)
            if isinstance(v, (int, float)):
                parts.append(f"{key}={v:.6g}")
        return " ".join(parts)
    return str(value)


def cmd_stats(args) -> int:
    """Render and compare run manifests written by telemetry-enabled runs."""
    manifests = []
    for path in args.manifests:
        try:
            if path == "-":  # piped straight out of a CI log
                manifests.append(
                    (Path("<stdin>"), Manifest.from_json(sys.stdin.read()))
                )
            else:
                manifests.append((Path(path), Manifest.load(path)))
        except (OSError, ValueError, TypeError) as exc:
            log.error("cannot read manifest %s: %s", path, exc)
            return 2
    rows = []
    for path, m in manifests:
        rows.append((
            path.name,
            m.workload,
            m.size,
            f"{m.phase_seconds('setup'):.3f}",
            f"{m.phase_seconds('execute'):.3f}",
            f"{m.phase_seconds('aggregate'):.3f}",
            f"{m.events_total:,}",
            f"{m.events_per_sec:,.0f}",
            m.metric("sigil.shadow.peak_shadow_bytes") // 1024,
            f"{m.metric('sigil.bytes.unique'):,}",
            f"{m.metric('sigil.bytes.nonunique'):,}",
        ))
    print(render_table(
        ["manifest", "workload", "size", "setup_s", "execute_s", "aggr_s",
         "events", "ev/s", "peak_shadow_KB", "uniq_B", "nonuniq_B"],
        rows,
        title=f"{len(rows)} run manifest{'s' if len(rows) != 1 else ''}",
    ))
    if args.verbose_metrics:
        for path, m in manifests:
            print(f"\n{path.name} (git {m.git_rev or '?'}, "
                  f"config {m.config_hash or '?'}):")
            for name, value in sorted(m.metrics.items()):
                print(f"  {name:40s} {_fmt_metric_value(value)}")
    if len(manifests) >= 2:
        base_path, base = manifests[0]

        def _ratio(new: float, old: float) -> str:
            return f"{new / old:.2f}x" if old else "n/a"

        rows = []
        for path, m in manifests[1:]:
            rows.append((
                path.name,
                _ratio(m.phase_seconds("execute"), base.phase_seconds("execute")),
                _ratio(m.events_per_sec, base.events_per_sec),
                _ratio(
                    m.metric("sigil.shadow.peak_shadow_bytes"),
                    base.metric("sigil.shadow.peak_shadow_bytes"),
                ),
                _ratio(
                    m.metric("sigil.bytes.unique"),
                    base.metric("sigil.bytes.unique"),
                ),
                "yes" if m.config_hash == base.config_hash else "NO",
            ))
        print()
        print(render_table(
            ["manifest", "execute", "ev/s", "peak_shadow", "uniq_B",
             "same_config"],
            rows,
            title=f"relative to {base_path.name}",
        ))
    return 0


_EVENTS_MAGIC = "# sigil-events"
_PROFILE_MAGIC = "# sigil-profile"


def _sniff_trace_input(text: str) -> str:
    """Classify a `repro trace` input: 'events', 'profile' or 'manifest'."""
    stripped = text.lstrip()
    if stripped.startswith("{"):
        return "manifest"
    first = stripped.splitlines()[0] if stripped else ""
    if first.startswith(_EVENTS_MAGIC):
        return "events"
    if first.startswith(_PROFILE_MAGIC):
        return "profile"
    raise ValueError(
        "unrecognised input: expected a sigil event file, a sigil profile, "
        "or a run-manifest JSON"
    )


def cmd_trace(args) -> int:
    """Export visual trace formats: Perfetto timelines and flamegraphs."""
    from repro.io import (
        dumps_chrome,
        events_to_chrome,
        manifest_to_chrome,
        profile_to_collapsed,
    )
    from repro.io.eventbin import is_binary_events, load_events_bin
    from repro.io.eventfile import loads_events
    from repro.io.profilefile import loads_profile

    source = Path(args.input)
    try:
        raw = source.read_bytes()
        if is_binary_events(raw[:32]):
            kind, text = "events-bin", ""
        else:
            text = raw.decode()
            kind = _sniff_trace_input(text)
    except (OSError, ValueError) as exc:
        log.error("cannot read %s: %s", args.input, exc)
        return 2

    if args.format == "chrome":
        if kind in ("events", "events-bin"):
            events = (
                load_events_bin(source)
                if kind == "events-bin"
                else loads_events(text)
            )
            trace = events_to_chrome(events)
            n_data = sum(1 for e in events.edges() if e.kind == "data")
            summary = (f"{events.n_segments} segments, {n_data} data flows")
        elif kind == "manifest":
            manifest = Manifest.from_json(text)
            trace = manifest_to_chrome(manifest)
            summary = (f"{manifest.workload}/{manifest.size}, "
                       f"{len(manifest.phases)} pipeline phases")
        else:
            log.error(
                "aggregate profiles carry no timeline; use --format "
                "collapsed for a flamegraph, or trace an --events-out file"
            )
            return 2
        rendered = dumps_chrome(trace)
        suffix = ".trace.json"
    else:  # collapsed
        if kind != "profile":
            log.error(
                "collapsed stacks need the calling-context tree of an "
                "aggregate profile (`repro profile -o`); %s is a %s file",
                args.input, kind,
            )
            return 2
        rendered = profile_to_collapsed(loads_profile(text), weight=args.weight)
        summary = f"weight {args.weight}, {len(rendered.splitlines())} stacks"
        suffix = ".collapsed"

    if args.output == "-":
        sys.stdout.write(rendered)
        return 0
    out = Path(args.output) if args.output else source.with_name(
        source.stem + suffix
    )
    out.write_text(rendered)
    what = "chrome trace" if args.format == "chrome" else "collapsed stacks"
    hint = "ui.perfetto.dev" if args.format == "chrome" else "speedscope.app"
    print(f"{what} written to {out} ({summary}; open in {hint})")
    return 0


def cmd_timeline(args) -> int:
    """Time-resolved curves of an event log as Perfetto counter tracks.

    Streams the file chunk-at-a-time (bounded memory on arbitrarily large
    v2 logs) and emits WS(t), communication-bytes-per-window, ops-per-window
    and mean-reuse-lifetime counter tracks.
    """
    from repro.analysis.windowed import windowed_curves
    from repro.io import curves_to_chrome, dumps_chrome

    source = Path(args.events)
    try:
        curves = windowed_curves(
            source, window=args.window, telemetry=_telemetry_from(args)
        )
    except (OSError, ValueError) as exc:
        log.error("cannot analyse %s: %s", args.events, exc)
        return 2

    if args.curves_out:
        Path(args.curves_out).write_text(
            json.dumps(curves.to_dict(), separators=(",", ":")) + "\n"
        )

    rendered = dumps_chrome(curves_to_chrome(curves))
    if args.output == "-":
        sys.stdout.write(rendered)
        return 0
    out = (
        Path(args.output)
        if args.output
        else source.with_name(source.stem + ".timeline.json")
    )
    out.write_text(rendered)
    peak = curves.peak_ws_bytes
    print(
        f"timeline written to {out} ({curves.n_windows} windows of "
        f"{curves.window} ops, {curves.total_segments} segments, "
        f"{curves.total_comm_bytes} comm bytes, peak WS {peak} B; "
        f"open in ui.perfetto.dev)"
    )
    return 0


# ---------------------------------------------------------------------------
# campaigns
# ---------------------------------------------------------------------------


def _campaign_store(args):
    from repro.campaign import ResultStore

    return ResultStore(getattr(args, "store", None))


def _campaign_spec_from(args):
    """Build the campaign spec from ``--spec`` or the matrix flags."""
    from repro.campaign import CampaignSpec
    from repro.workloads import ALL_NAMES as _ALL

    runner = getattr(args, "runner", None)
    if runner:
        # Importing registers the runner's tools, so specs naming them
        # validate here exactly as they will inside each worker.
        import importlib

        importlib.import_module(runner)
    if getattr(args, "spec", None):
        spec = CampaignSpec.load(args.spec)
        if getattr(args, "name", None):
            spec.name = args.name
            spec.validate()
        return spec
    if not getattr(args, "workloads", None):
        raise ValueError("campaign run needs --spec FILE or --workloads LIST")
    workloads = (
        list(_ALL) if args.workloads == "all" else args.workloads.split(",")
    )
    configs = [json.loads(c) for c in (args.config or [])]
    return CampaignSpec.from_lists(
        name=getattr(args, "name", None) or "campaign",
        workloads=workloads,
        sizes=args.sizes.split(",") if args.sizes else None,
        tools=args.tools.split(",") if args.tools else None,
        configs=configs or None,
    )


def _dist_backends(args):
    """Backend list from ``--workers`` / ``--local-workers`` (or None)."""
    from repro.campaign.dist import make_backends

    hosts = [h for h in (getattr(args, "workers", None) or "").split(",") if h]
    local = getattr(args, "local_workers", 0) or 0
    if not hosts and not local:
        return None
    ssh_cmd = getattr(args, "ssh_cmd", None)
    ssh_argv = shlex.split(ssh_cmd) if ssh_cmd else None
    return make_backends(hosts=hosts, local_workers=local, ssh_argv=ssh_argv)


def _campaign_execute(args, spec, store, state, *, skip_keys=frozenset()) -> int:
    """Shared body of ``campaign run`` and ``campaign resume``."""
    from repro.campaign import run_campaign, write_campaign_manifest

    jobs = spec.jobs()
    if args.dry_run:
        result = run_campaign(jobs, store, None, dry_run=True,
                              skip_keys=skip_keys)
        for job in jobs:
            rec = result.records[job.key]
            verb = "cached" if rec.cached else "run"
            print(f"{verb:7s} {job.key[:12]}  {job.label}")
        print(result.summary(spec.name))
        return 0
    backends = _dist_backends(args)
    workers_section = None
    if backends is not None:
        from repro.campaign.dist import parse_chaos_kill, run_distributed

        chaos = getattr(args, "chaos_kill", None)
        result = run_distributed(
            jobs,
            store,
            state,
            backends=backends,
            slots=getattr(args, "slots", 1),
            timeout=args.timeout,
            retries=args.retries,
            backoff=args.backoff,
            heartbeat_seconds=getattr(args, "heartbeat_secs", None) or 2.0,
            stale_after=getattr(args, "stale_after", None),
            runner=getattr(args, "runner", None),
            skip_keys=skip_keys,
            progress=lambda line: log.info("%s", line),
            chaos_kill=parse_chaos_kill(chaos) if chaos else None,
        )
        workers_section = result.workers
    else:
        result = run_campaign(
            jobs,
            store,
            state,
            workers=args.jobs,
            timeout=args.timeout,
            retries=args.retries,
            backoff=args.backoff,
            heartbeat_seconds=getattr(args, "heartbeat_secs", None),
            progress=lambda line: log.info("%s", line),
            skip_keys=skip_keys,
        )
    manifest_path = write_campaign_manifest(
        state, jobs, result.records, store,
        wall_seconds=result.wall_seconds,
        workers=workers_section,
    )
    print(result.summary(spec.name))
    print(f"campaign manifest written to {manifest_path}")
    if not result.ok:
        for rec in result.records.values():
            if rec.state != "done":
                log.error("%s: %s%s", rec.label, rec.state,
                          f" ({rec.error})" if rec.error else "")
        return 1
    return 0


def _ensure_runner(args, state) -> None:
    """Import the campaign's runner module: the flag wins, else the saved one.

    ``resume``/``status`` reload a spec whose tools may come from a runner
    module; importing it first makes validation see the same tool set
    ``run`` did.  The resolved name is written back to ``args.runner`` so
    the distributed path forwards it to every worker.
    """
    module = getattr(args, "runner", None) or state.runner_module()
    if module:
        import importlib

        importlib.import_module(module)
        args.runner = module


def cmd_campaign_run(args) -> int:
    from repro.campaign import CampaignState

    store = _campaign_store(args)
    spec = _campaign_spec_from(args)
    state = CampaignState(store.campaign_dir(spec.name))
    if not args.dry_run:
        state.save_spec(spec)
        if getattr(args, "runner", None):
            state.save_runner(args.runner)
    return _campaign_execute(args, spec, store, state)


def cmd_campaign_resume(args) -> int:
    from repro.campaign import CampaignState

    store = _campaign_store(args)
    state = CampaignState(store.campaign_dir(args.name))
    _ensure_runner(args, state)
    spec = state.load_spec()
    completed = state.completed_keys()
    log.info("resume: %d of %d jobs already complete",
             len(completed), len(spec))
    return _campaign_execute(args, spec, store, state,
                             skip_keys=completed)


def cmd_campaign_status(args) -> int:
    from repro.campaign import (
        CampaignState,
        build_campaign_manifest,
        render_status,
    )

    store = _campaign_store(args)
    state = CampaignState(store.campaign_dir(args.name))
    _ensure_runner(args, state)
    spec = state.load_spec()
    jobs = spec.jobs()
    records = state.replay_all()
    workers = state.worker_stats() or None
    if getattr(args, "json", False):
        print(json.dumps(
            build_campaign_manifest(spec.name, jobs, records, store,
                                    workers=workers),
            indent=2, sort_keys=True,
        ))
        return 0
    print(render_status(spec.name, jobs, records, store, workers=workers))
    return 0


def cmd_campaign_clean(args) -> int:
    import shutil

    from repro.campaign import CampaignState

    store = _campaign_store(args)
    if getattr(args, "all", False):
        if store.root.exists():
            shutil.rmtree(store.root)
            print(f"removed store {store.root}")
        else:
            print(f"nothing to remove at {store.root}")
        return 0
    if not getattr(args, "name", None):
        log.error("campaign clean needs a campaign name or --all")
        return 2
    state = CampaignState(store.campaign_dir(args.name))
    removed_jobs = 0
    if getattr(args, "objects", False) and state.exists():
        spec = state.load_spec()
        removed_jobs = sum(store.drop(job.key) for job in spec.jobs())
    if state.remove():
        suffix = f" and {removed_jobs} stored results" if removed_jobs else ""
        print(f"removed campaign '{args.name}'{suffix}")
        return 0
    log.error("no campaign named %r under %s", args.name, store.root)
    return 2


def cmd_campaign_verify(args) -> int:
    """Integrity-check every stored result; non-zero exit on corruption."""
    store = _campaign_store(args)
    report = store.verify_all()
    if report.corrupt:
        for key in report.corrupt:
            log.error("corrupt store entry: %s", key)
        print(f"store {store.root}: {report.checked} entries checked, "
              f"{len(report.corrupt)} CORRUPT")
        return 1
    print(f"store {store.root}: {report.checked} entries checked, all ok")
    return 0


def cmd_campaign_worker(args) -> int:
    """Protocol worker endpoint; launched by a backend, not by humans."""
    from repro.campaign.dist import run_worker

    return run_worker(
        worker=args.id,
        store_root=args.store,
        journal=getattr(args, "journal", None),
        slots=args.slots,
        heartbeat_seconds=getattr(args, "heartbeat_secs", None) or 2.0,
        timeout=getattr(args, "timeout", None),
        runner=getattr(args, "runner", None),
    )


# ---------------------------------------------------------------------------
# serve: profiling-as-a-service
# ---------------------------------------------------------------------------


def _http_json(url: str, body=None, timeout: float = 30.0):
    """One JSON request against the serve daemon; errors become one line."""
    import urllib.error
    import urllib.request

    data = json.dumps(body).encode() if body is not None else None
    headers = {"Content-Type": "application/json"} if data else {}
    req = urllib.request.Request(url, data=data, headers=headers)
    try:
        with urllib.request.urlopen(req, timeout=timeout) as resp:
            return json.loads(resp.read().decode())
    except urllib.error.HTTPError as exc:
        detail = ""
        try:
            detail = json.loads(exc.read().decode()).get("error", "")
        except (ValueError, OSError):
            pass
        raise RuntimeError(
            f"{url}: HTTP {exc.code}" + (f": {detail}" if detail else "")
        ) from None
    except urllib.error.URLError as exc:
        raise RuntimeError(f"cannot reach {url}: {exc.reason}") from None


def cmd_serve(args) -> int:
    """Run the profiling daemon until interrupted (ctrl-C exits cleanly)."""
    from repro.campaign import ResultStore
    from repro.serve import create_server, serve_forever

    store = ResultStore(getattr(args, "store", None))
    server = create_server(
        store,
        host=args.host,
        port=args.port,
        workers=args.jobs,
        concurrency=args.concurrency,
        timeout=args.timeout,
        retries=args.retries,
        heartbeat_seconds=getattr(args, "heartbeat_secs", None) or 5.0,
        resume=not args.no_resume,
    )
    host, port = server.server_address[0], server.server_address[1]
    print(f"repro serve: listening on http://{host}:{port} "
          f"(store {store.root})")
    sys.stdout.flush()
    serve_forever(server, port_file=args.port_file)
    return 0


def cmd_submit(args) -> int:
    """POST one job to a running daemon; prints only the job id (stdout)."""
    if args.body:
        text = sys.stdin.read() if args.body == "-" else Path(args.body).read_text()
        body = json.loads(text)
    elif args.workload:
        body = {
            "workload": args.workload,
            "size": args.size,
            "tool": args.tool,
        }
        if args.config:
            body["config"] = json.loads(args.config)
    else:
        log.error("submit needs a WORKLOAD or --body FILE")
        return 2
    resp = _http_json(args.url.rstrip("/") + "/jobs", body)
    log.info("submitted %s (%s cells) to %s", resp["job"], resp["cells"],
             args.url)
    print(resp["job"])
    return 0


def _render_trace_record(rec) -> str:
    """One human line per trace record (shared by both watch modes)."""
    seq = rec.get("seq", 0)
    event = str(rec.get("event", "?"))
    bits = []
    if rec.get("label"):
        bits.append(str(rec["label"]))
    if event == "done":
        bits.append(
            "cached" if rec.get("cached")
            else f"{float(rec.get('seconds', 0.0)):.2f}s"
        )
    elif event in ("submitted", "resumed"):
        bits.append(f"{rec.get('name', '?')}: {rec.get('cells', '?')} cells")
    elif event == "heartbeat":
        bits.append(str(rec.get("message", "")))
    elif event == "phases":
        skip = {"seq", "event", "t", "job", "key", "label"}
        bits.append(" ".join(
            f"{k}={float(v):.3f}s" for k, v in sorted(rec.items())
            if k not in skip and isinstance(v, (int, float))
        ))
    elif event in ("completed", "error"):
        state = str(rec.get("state", event))
        summary = " ".join(
            f"{k}={rec[k]}" for k in
            ("total", "done", "cached", "executed", "failed", "timeout")
            if k in rec
        )
        bits.append(state + (f" ({summary})" if summary else ""))
        if rec.get("message"):
            bits.append(str(rec["message"]))
    elif rec.get("error"):
        bits.append(str(rec["error"]))
    return f"#{int(seq):<4d} {event:<10s} " + "  ".join(b for b in bits if b)


def _watch_exit_code(rec) -> int:
    """Map a terminal trace record to the watcher's exit code."""
    return 0 if rec.get("state") == "done" else 1


def _watch_sse(args) -> int:
    """Stream a job's events from a daemon over SSE until it finishes."""
    import urllib.error
    import urllib.request

    url = (f"{args.url.rstrip('/')}/jobs/{args.job}/events"
           f"?after={args.after}")
    try:
        resp = urllib.request.urlopen(url, timeout=args.timeout or 300.0)
    except urllib.error.HTTPError as exc:
        log.error("%s: HTTP %d", url, exc.code)
        return 2
    except urllib.error.URLError as exc:
        log.error("cannot reach %s: %s", url, exc.reason)
        return 2
    from repro.serve import TERMINAL_EVENTS

    with resp:
        for raw in resp:
            line = raw.decode("utf-8", "replace").rstrip("\n")
            if not line.startswith("data: "):
                continue  # id:/event:/retry:/pings; data carries the record
            rec = json.loads(line[len("data: "):])
            print(_render_trace_record(rec))
            sys.stdout.flush()
            if rec.get("event") in TERMINAL_EVENTS:
                return _watch_exit_code(rec)
    log.error("stream ended before the job finished")
    return 1


def cmd_watch(args) -> int:
    """Follow a serve job to completion: trace-file tail or SSE (--url)."""
    if args.url:
        return _watch_sse(args)
    import time as _time

    from repro.campaign import ResultStore
    from repro.serve import TERMINAL_EVENTS
    from repro.telemetry import read_jsonl

    store = ResultStore(getattr(args, "store", None))
    trace = store.root / "serve" / "jobs" / args.job / "trace.jsonl"
    if not trace.parent.exists():
        log.error("no such serve job: %s (under %s)", args.job, store.root)
        return 2
    deadline = (_time.monotonic() + args.timeout) if args.timeout else None
    last = args.after
    while True:
        for rec in read_jsonl(trace):
            if int(rec.get("seq", 0)) <= last:
                continue
            last = int(rec.get("seq", 0))
            print(_render_trace_record(rec))
            sys.stdout.flush()
            if rec.get("event") in TERMINAL_EVENTS:
                return _watch_exit_code(rec)
        if deadline is not None and _time.monotonic() >= deadline:
            log.error("gave up after %.0fs (job still running)", args.timeout)
            return 1
        _time.sleep(0.2)


def cmd_metrics(args) -> int:
    """Scrape a daemon's Prometheus exposition and print it verbatim."""
    import urllib.error
    import urllib.request

    url = args.url.rstrip("/") + "/metrics"
    try:
        with urllib.request.urlopen(url, timeout=10.0) as resp:
            sys.stdout.write(resp.read().decode())
    except urllib.error.URLError as exc:
        log.error("cannot scrape %s: %s", url, exc)
        return 2
    return 0


# ---------------------------------------------------------------------------
# parser
# ---------------------------------------------------------------------------


def _positive_int(text: str) -> int:
    """argparse type: a strictly positive integer."""
    value = int(text)
    if value <= 0:
        raise argparse.ArgumentTypeError(f"must be positive, got {value}")
    return value


def _positive_float(text: str) -> float:
    """argparse type: a strictly positive float."""
    value = float(text)
    if value <= 0:
        raise argparse.ArgumentTypeError(f"must be positive, got {value}")
    return value


def _telemetry_parent() -> argparse.ArgumentParser:
    """Shared telemetry/logging flags, attachable to any subcommand.

    Defaults are ``SUPPRESS`` so a flag given before the subcommand (on the
    main parser) is not clobbered by the subparser's defaults; readers use
    ``getattr`` with fallbacks.
    """
    parent = argparse.ArgumentParser(add_help=False)
    group = parent.add_argument_group("telemetry / logging")
    group.add_argument(
        "--telemetry", action="store_true", default=argparse.SUPPRESS,
        help="measure the run itself and always write a JSON run manifest")
    group.add_argument(
        "--no-telemetry", dest="no_telemetry", action="store_true",
        default=argparse.SUPPRESS,
        help="disable self-telemetry (zero extra calls on the event path)")
    group.add_argument(
        "--manifest-out", metavar="FILE", default=argparse.SUPPRESS,
        help="write the run manifest to FILE")
    group.add_argument(
        "--heartbeat", type=_positive_int, metavar="N",
        default=argparse.SUPPRESS,
        help="print a stderr progress line every N dispatched events")
    group.add_argument(
        "--heartbeat-secs", type=_positive_float, metavar="T",
        default=argparse.SUPPRESS,
        help="print a stderr progress line at least every T seconds")
    group.add_argument(
        "-v", "--verbose", action="count", default=argparse.SUPPRESS,
        help="more logging (-v info, -vv debug)")
    group.add_argument(
        "-q", "--quiet", action="count", default=argparse.SUPPRESS,
        help="less logging (errors only)")
    return parent


def _add_events_format_arg(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--events-format", choices=["text", "bin"], default="bin",
        help="event-file format for --events-out: 'bin' is the columnar "
             "# sigil-events 2 (compact, loads without per-row objects); "
             "'text' is the line-oriented v1. All readers sniff the "
             "version (default: bin)")


def _add_transport_args(p: argparse.ArgumentParser) -> None:
    group = p.add_mutually_exclusive_group()
    group.add_argument(
        "--batch-size", type=int, default=None, metavar="N",
        help="trace-transport ring-buffer capacity in accesses "
             f"(default {SigilConfig().batch_size})")
    group.add_argument(
        "--no-batch", action="store_true",
        help="disable the batched trace transport: one observer call per "
             "memory access (the legacy path; profiles are identical)")


def _add_workload_args(p: argparse.ArgumentParser) -> None:
    # Not argparse `choices`: unknown workloads are reported by the registry
    # with a one-line error (see `main`), not a usage dump -- campaign
    # workers and scripts parse that stderr line.
    p.add_argument("workload", metavar="WORKLOAD",
                   help="benchmark to run (see `repro list`)")
    p.add_argument("--size", default="simsmall",
                   choices=[s.value for s in InputSize])


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser for every subcommand."""
    common = _telemetry_parent()
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Sigil reproduction: function-level communication profiling",
        parents=[common],
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("list", help="list available workloads")
    p.add_argument("--json", action="store_true",
                   help="emit the workload registry as machine-readable "
                        "JSON (for scripting campaign specs)")
    p.set_defaults(func=cmd_list)

    p = sub.add_parser("profile", help="profile a workload with Sigil",
                       parents=[common])
    _add_workload_args(p)
    p.add_argument("--reuse", action="store_true", help="enable re-use mode")
    p.add_argument("--events", action="store_true", help="enable event mode")
    p.add_argument("--line-size", type=int, default=1,
                   help="shadow granularity in bytes (power of two)")
    p.add_argument("--max-shadow-pages", type=int, default=None,
                   help="FIFO shadow-memory limit (pages)")
    _add_transport_args(p)
    p.add_argument("-o", "--output", help="write the aggregate profile here")
    p.add_argument("--events-out", help="write the event file here")
    _add_events_format_arg(p)
    p.add_argument("--callgrind-out", help="write the callgrind profile here")
    p.add_argument("--trace-out", metavar="FILE",
                   help="write a Chrome/Perfetto trace of the run here "
                        "(implies --events)")
    p.add_argument("--top", type=int, default=10)
    p.set_defaults(func=cmd_profile)

    p = sub.add_parser("report", help="summarise a saved profile")
    p.add_argument("profile", help="file written by `repro profile -o`")
    p.add_argument("--top", type=int, default=10)
    p.add_argument("--tree", action="store_true",
                   help="print the annotated calling-context tree")
    p.add_argument("--dot", help="write a graphviz CDFG here")
    p.add_argument("--kcachegrind",
                   help="export communication metrics in callgrind format")
    p.set_defaults(func=cmd_report)

    p = sub.add_parser("partition", help="HW/SW partitioning study",
                       parents=[common])
    p.add_argument("workload", nargs="?", metavar="WORKLOAD")
    p.add_argument("--size", default="simsmall",
                   choices=[s.value for s in InputSize])
    p.add_argument("--profile", help="saved Sigil profile (offline mode)")
    p.add_argument("--callgrind", help="saved callgrind profile (offline mode)")
    p.add_argument("--bandwidth", type=float, default=8.0,
                   help="SoC bus bandwidth, bytes/cycle")
    p.add_argument("--top", type=int, default=10)
    p.set_defaults(func=cmd_partition)

    p = sub.add_parser("reuse", help="data re-use study", parents=[common])
    _add_workload_args(p)
    p.add_argument("--function", help="print this function's lifetime histogram")
    p.add_argument("--mrc", action="store_true",
                   help="also print the stack-distance miss-ratio curve")
    p.add_argument("--top", type=int, default=8)
    _add_transport_args(p)
    p.set_defaults(func=cmd_reuse)

    p = sub.add_parser("figures", help="regenerate the paper's tables/figures")
    p.add_argument("--only", help="pytest -k filter, e.g. 'fig7 or table2'")
    p.set_defaults(func=cmd_figures)

    p = sub.add_parser("diff", help="compare two saved profiles")
    p.add_argument("baseline")
    p.add_argument("subject")
    p.add_argument("--top", type=int, default=15)
    p.set_defaults(func=cmd_diff)

    p = sub.add_parser("run", help="assemble and profile a .s program",
                       parents=[common])
    p.add_argument("program", help="assembly file (see repro.vm.asm)")
    p.add_argument("--entry", default="main")
    p.add_argument("--reuse", action="store_true")
    p.add_argument("--events", action="store_true")
    p.add_argument("-o", "--output", help="write the aggregate profile here")
    p.add_argument("--events-out", help="write the event file here")
    _add_events_format_arg(p)
    p.add_argument("--top", type=int, default=10)
    _add_transport_args(p)
    p.set_defaults(func=cmd_run)

    p = sub.add_parser("critpath", help="critical-path / scheduling study",
                       parents=[common])
    p.add_argument("target", help="event file or workload name")
    p.add_argument("--size", default="simsmall",
                   choices=[s.value for s in InputSize])
    p.add_argument("--cores", help="comma-separated core counts to schedule")
    p.add_argument("--dot", help="write the dependency-chain graph here")
    p.set_defaults(func=cmd_critpath)

    p = sub.add_parser("trace",
                       help="export Perfetto timelines / flamegraphs")
    p.add_argument("input",
                   help="event file, aggregate profile, or run manifest")
    p.add_argument("--format", choices=["chrome", "collapsed"],
                   default="chrome",
                   help="chrome: Perfetto/chrome://tracing JSON (event file "
                        "or manifest); collapsed: speedscope/FlameGraph "
                        "stacks (aggregate profile)")
    p.add_argument("--weight", choices=sorted(_COLLAPSED_WEIGHTS),
                   default="ops",
                   help="flamegraph weight axis (collapsed format only)")
    p.add_argument("-o", "--output",
                   help="output file (default: derived from input; "
                        "'-' for stdout)")
    p.set_defaults(func=cmd_trace)

    p = sub.add_parser(
        "timeline",
        help="time-resolved WS(t)/communication counter tracks",
        parents=[common],
    )
    p.add_argument("events", help="event file (v2 logs stream out of core)")
    p.add_argument("--window", type=_positive_int, metavar="N",
                   default=DEFAULT_WINDOW_OPS,
                   help="window width in retired operations "
                        f"(default {DEFAULT_WINDOW_OPS})")
    p.add_argument("-o", "--output",
                   help="Perfetto trace output (default: "
                        "<events>.timeline.json; '-' for stdout)")
    p.add_argument("--curves-out", metavar="FILE",
                   help="also write the raw repro-windowed/1 curves JSON")
    p.set_defaults(func=cmd_timeline)

    p = sub.add_parser("stats", help="print / compare run manifests")
    p.add_argument("manifests", nargs="+",
                   help="manifest JSON files written by telemetry runs "
                        "('-' reads one manifest from stdin)")
    p.add_argument("--metrics", dest="verbose_metrics", action="store_true",
                   help="also dump every raw metric per manifest")
    p.set_defaults(func=cmd_stats)

    p = sub.add_parser(
        "campaign",
        help="batch profiling campaigns: parallel, cached, resumable",
    )
    csub = p.add_subparsers(dest="campaign_cmd", required=True)

    def _store_arg(cp: argparse.ArgumentParser) -> None:
        cp.add_argument(
            "--store", metavar="DIR", default=None,
            help="result store root (default: $REPRO_CAMPAIGN_STORE "
                 "or ./.repro-campaigns)")

    def _exec_args(cp: argparse.ArgumentParser) -> None:
        cp.add_argument("-j", "--jobs", type=_positive_int, default=1,
                        metavar="N", help="worker processes (default 1)")
        cp.add_argument("--timeout", type=_positive_float, metavar="S",
                        default=None,
                        help="kill any job running longer than S seconds")
        cp.add_argument("--retries", type=int, default=1, metavar="N",
                        help="re-attempts per failed/timed-out job "
                             "(default 1)")
        cp.add_argument("--backoff", type=_positive_float, default=0.5,
                        metavar="S",
                        help="base retry backoff; doubles per attempt "
                             "(default 0.5s)")
        cp.add_argument("--dry-run", action="store_true",
                        help="plan and classify jobs without running any")

    def _dist_args(cp: argparse.ArgumentParser) -> None:
        group = cp.add_argument_group(
            "distributed execution (see docs/distributed.md)")
        group.add_argument(
            "--workers", metavar="HOSTS", default=None,
            help="comma-separated ssh hosts to shard the campaign across")
        group.add_argument(
            "--local-workers", type=_positive_int, default=0, metavar="N",
            help="also launch N worker subprocesses on this host")
        group.add_argument(
            "--slots", type=_positive_int, default=1, metavar="N",
            help="concurrent jobs per worker (default 1)")
        group.add_argument(
            "--stale-after", type=_positive_float, default=None, metavar="S",
            help="steal a worker's jobs after S seconds of silence "
                 "(default 4x heartbeat interval, min 10s)")
        group.add_argument(
            "--runner", metavar="MODULE", default=None,
            help="importable module whose import registers extra tool "
                 "runners (imported here and inside every worker)")
        group.add_argument(
            "--ssh-cmd", metavar="CMD", default=None,
            help="ssh command prefix for --workers hosts "
                 "(default 'ssh -o BatchMode=yes')")
        group.add_argument(
            "--chaos-kill", metavar="WORKER:SECONDS", default=None,
            help="failure injection: kill WORKER that many seconds into "
                 "the run (exercises work stealing; used by dist-smoke)")

    cp = csub.add_parser("run", help="plan and execute a campaign",
                         parents=[common])
    cp.add_argument("--spec", metavar="FILE",
                    help="campaign spec JSON (see docs/campaigns.md)")
    cp.add_argument("--name", help="campaign name (default: from spec "
                                   "or 'campaign')")
    cp.add_argument("--workloads", metavar="LIST",
                    help="comma-separated workloads, or 'all'")
    cp.add_argument("--sizes", metavar="LIST",
                    help="comma-separated input sizes (default simsmall)")
    cp.add_argument("--tools", metavar="LIST",
                    help="comma-separated tool stacks "
                         "(default sigil+callgrind)")
    cp.add_argument("--config", action="append", metavar="JSON",
                    help="SigilConfig variant as JSON; repeatable, each "
                         "adds one matrix axis entry")
    _store_arg(cp)
    _exec_args(cp)
    _dist_args(cp)
    cp.set_defaults(func=cmd_campaign_run)

    cp = csub.add_parser("resume", help="finish an interrupted campaign",
                         parents=[common])
    cp.add_argument("name", help="campaign name (as given to run)")
    _store_arg(cp)
    _exec_args(cp)
    _dist_args(cp)
    cp.set_defaults(func=cmd_campaign_resume)

    cp = csub.add_parser("status", help="show a campaign's job states")
    cp.add_argument("name", help="campaign name (as given to run)")
    cp.add_argument("--json", action="store_true",
                    help="emit the campaign manifest JSON instead of "
                         "the table")
    _store_arg(cp)
    cp.set_defaults(func=cmd_campaign_status)

    cp = csub.add_parser("clean", help="drop campaign state / results")
    cp.add_argument("name", nargs="?", help="campaign to remove")
    cp.add_argument("--objects", action="store_true",
                    help="also drop the named campaign's stored results")
    cp.add_argument("--all", action="store_true",
                    help="remove the entire store root")
    _store_arg(cp)
    cp.set_defaults(func=cmd_campaign_clean)

    cp = csub.add_parser(
        "verify",
        help="integrity-check every stored result (exit 1 on corruption)")
    _store_arg(cp)
    cp.set_defaults(func=cmd_campaign_verify)

    cp = csub.add_parser(
        "worker",
        parents=[common],
        help="protocol worker endpoint (launched by backends, not humans)")
    cp.add_argument("--id", required=True, metavar="NAME",
                    help="worker id stamped on journals and heartbeats")
    cp.add_argument("--store", required=True, metavar="DIR",
                    help="this worker's own result store root")
    cp.add_argument("--journal", metavar="FILE", default=None,
                    help="journal path (default <store>/journal.jsonl)")
    cp.add_argument("--slots", type=_positive_int, default=1, metavar="N",
                    help="concurrent job children (default 1)")
    cp.add_argument("--timeout", type=_positive_float, metavar="S",
                    default=None,
                    help="kill any job running longer than S seconds")
    cp.add_argument("--runner", metavar="MODULE", default=None,
                    help="module imported for tool-runner registration")
    cp.set_defaults(func=cmd_campaign_worker)

    default_url = "http://127.0.0.1:8787"

    p = sub.add_parser(
        "serve",
        help="run the profiling-as-a-service daemon (HTTP + SSE + metrics)",
        parents=[common],
    )
    p.add_argument("--host", default="127.0.0.1",
                   help="bind address (default 127.0.0.1)")
    p.add_argument("--port", type=int, default=8787,
                   help="bind port; 0 picks an ephemeral one (default 8787)")
    p.add_argument("--port-file", metavar="FILE",
                   help="write the bound host:port here once listening "
                        "(pairs with --port 0 in scripts)")
    p.add_argument("-j", "--jobs", type=_positive_int, default=1, metavar="N",
                   help="worker processes per campaign (default 1)")
    p.add_argument("--concurrency", type=_positive_int, default=1,
                   metavar="N", help="serve jobs executing at once "
                                     "(default 1)")
    p.add_argument("--timeout", type=_positive_float, metavar="S",
                   default=None,
                   help="kill any cell running longer than S seconds")
    p.add_argument("--retries", type=int, default=1, metavar="N",
                   help="re-attempts per failed cell (default 1)")
    p.add_argument("--no-resume", action="store_true",
                   help="do not re-queue journaled jobs from a previous run")
    _store_arg(p)
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser(
        "submit", help="submit a job to a running repro serve daemon",
        parents=[common],
    )
    p.add_argument("workload", nargs="?", metavar="WORKLOAD",
                   help="workload for a single-cell job")
    p.add_argument("--size", default="simsmall",
                   choices=[s.value for s in InputSize])
    p.add_argument("--tool", default="sigil+callgrind",
                   help="tool stack (default sigil+callgrind)")
    p.add_argument("--config", metavar="JSON",
                   help="SigilConfig overrides for the cell")
    p.add_argument("--body", metavar="FILE",
                   help="raw JSON job body instead of the flags "
                        "('-' reads stdin); accepts the campaign form too")
    p.add_argument("--url", default=default_url,
                   help=f"daemon base URL (default {default_url})")
    p.set_defaults(func=cmd_submit)

    p = sub.add_parser(
        "watch", help="follow a serve job's event trace to completion",
        parents=[common],
    )
    p.add_argument("job", metavar="JOB", help="serve job id (job-NNNNNN)")
    p.add_argument("--url", default=None,
                   help="stream over SSE from this daemon URL instead of "
                        "tailing the trace file")
    p.add_argument("--after", type=int, default=0, metavar="SEQ",
                   help="skip events with seq <= SEQ (resume a watch)")
    p.add_argument("--timeout", type=_positive_float, metavar="S",
                   default=None, help="give up after S seconds")
    _store_arg(p)
    p.set_defaults(func=cmd_watch)

    p = sub.add_parser(
        "metrics", help="scrape a serve daemon's Prometheus /metrics")
    p.add_argument("--url", default=default_url,
                   help=f"daemon base URL (default {default_url})")
    p.set_defaults(func=cmd_metrics)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    args._argv = list(argv) if argv is not None else sys.argv[1:]
    _setup_logging(
        getattr(args, "verbose", 0) - getattr(args, "quiet", 0)
    )
    if args.command == "partition" and not args.workload and not (
        args.profile and args.callgrind
    ):
        parser.error("partition needs a workload or --profile AND --callgrind")
    try:
        return args.func(args)
    except BrokenPipeError:  # output piped into head/less and closed early
        return 0
    except KeyboardInterrupt:
        # A killed campaign (or any long run) exits cleanly; journaled
        # state makes `repro campaign resume` pick up from here.
        log.error("interrupted")
        return 130
    except Exception as exc:
        # One line on stderr, never a traceback: campaign workers and
        # scripts drive this CLI and parse its stderr.  -vv keeps the
        # traceback for debugging.
        if log.isEnabledFor(logging.DEBUG):
            log.exception("command failed")
        else:
            message = (
                exc.args[0]
                if isinstance(exc, KeyError) and exc.args
                else exc
            )
            log.error("%s", message)
        return 1


if __name__ == "__main__":  # pragma: no cover - exercised via tests
    sys.exit(main())
