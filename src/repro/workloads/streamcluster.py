"""Miniature *streamcluster*: online k-median clustering.

The paper's critical-path case study (section IV-C) reports streamcluster's
critical path as::

    drand48_iterate -> nrand48_r -> lrand48 -> pkmedian -> localSearch ->
    streamCluster -> main

"Streamcluster is characterized by many short paths, where functions closer
to the leaf-end of the critical path are of small consequence, e.g. rand",
giving a high theoretical parallelism limit (Figure 13).  The miniature
preserves that shape: per-point ``dist`` evaluations are independent short
chains, while the ``lrand48`` random-number chain is serialised through the
48-bit generator state -- exactly the structural critical path the paper
finds.
"""

from __future__ import annotations

import numpy as np

from repro.runtime.decorators import traced
from repro.runtime.memory import Buffer
from repro.runtime.runtime import TracedRuntime
from repro.workloads.base import InputSize, Workload
from repro.workloads.lib import LibEnv, op_new, std_vector_ctor

__all__ = ["Streamcluster"]


@traced("drand48_iterate")
def drand48_iterate(rt: TracedRuntime, state: Buffer) -> None:
    """Advance the 48-bit LCG state (serialising dependency)."""
    x = int(state.read(0))
    rt.iops(6)
    state.write(0, (25214903917 * x + 11) & ((1 << 48) - 1))


@traced("__nrand48_r")
def nrand48_r(rt: TracedRuntime, state: Buffer) -> int:
    drand48_iterate(rt, state)
    value = int(state.read(0))
    rt.iops(3)
    return value >> 17


@traced("lrand48")
def lrand48(rt: TracedRuntime, state: Buffer) -> int:
    rt.iops(2)
    return nrand48_r(rt, state)


@traced("dist")
def dist(
    rt: TracedRuntime, points: Buffer, a: int, b: int, dim: int
) -> float:
    """Squared distance between two points (independent short chain)."""
    pa = points.read_block(a * dim, dim)
    pb = points.read_block(b * dim, dim)
    rt.flops(3 * dim)
    return float(((pa - pb) ** 2).sum())


@traced("pkmedian")
def pkmedian(
    rt: TracedRuntime,
    points: Buffer,
    costs: Buffer,
    centers: list,
    state: Buffer,
    n: int,
    dim: int,
) -> float:
    """One facility-location pass: assign points, probabilistically open."""
    total = 0.0
    for i in range(n):
        rt.iops(5)
        rt.branch("pkmedian.loop", i + 1 < n)
        best = min(dist(rt, points, i, c, dim) for c in centers)
        costs.write(i, best)
        total += best
        if lrand48(rt, state) % 97 == 0 and len(centers) < 24:
            centers.append(i)
    rt.flops(8)
    return total


@traced("localSearch")
def local_search(
    rt: TracedRuntime,
    points: Buffer,
    costs: Buffer,
    state: Buffer,
    n: int,
    dim: int,
    passes: int,
) -> float:
    centers = [0]
    total = 0.0
    for p in range(passes):
        rt.iops(10)
        rt.branch("localSearch.pass", p + 1 < passes)
        total = pkmedian(rt, points, costs, centers, state, n, dim)
    return total


@traced("streamCluster")
def stream_cluster(
    rt: TracedRuntime,
    points: Buffer,
    costs: Buffer,
    state: Buffer,
    n: int,
    dim: int,
    passes: int,
) -> float:
    rt.iops(16)
    return local_search(rt, points, costs, state, n, dim, passes)


class Streamcluster(Workload):
    """Online k-median clustering with the serialised rand48 chain."""
    name = "streamcluster"
    description = "online clustering with k-median local search"

    PARAMS = {
        InputSize.SIMSMALL: {"n_points": 128, "dim": 8, "passes": 3},
        InputSize.SIMMEDIUM: {"n_points": 256, "dim": 8, "passes": 3},
        InputSize.SIMLARGE: {"n_points": 512, "dim": 8, "passes": 4},
    }

    def main(self, rt: TracedRuntime) -> None:
        p = self.params
        n, dim = p["n_points"], p["dim"]
        rng = self.rng()
        env = LibEnv.create(rt.arena)

        points = rt.arena.alloc_f64("sc.points", n * dim)
        costs = rt.arena.alloc_f64("sc.costs", n)
        state = rt.arena.alloc_i64("sc.rand_state", 2)
        points.poke_block(rng.normal(0.0, 10.0, n * dim))
        state.poke(0, 0x1234ABCD5678)
        rt.syscall("read", output_bytes=points.nbytes)

        op_new(rt, env, costs.nbytes)
        std_vector_ctor(rt, env, costs, costs.length)
        total = stream_cluster(rt, points, costs, state, n, dim, p["passes"])
        self.checksum = total
        rt.syscall("write", input_bytes=costs.nbytes)
