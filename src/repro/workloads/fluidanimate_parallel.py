"""Parallel *fluidanimate*: the threaded variant the paper leaves as future
work.

PARSEC's fluidanimate parallelises by partitioning the particle grid among
threads; neighbouring partitions exchange *ghost zones* (boundary particles)
every time step.  This variant runs ``n_threads`` virtual threads over
disjoint particle slices with per-step ghost exchanges, producing exactly
the communication structure a thread-level study needs: heavy intra-thread
traffic, nearest-neighbour cross-thread traffic, and negligible traffic
between non-adjacent threads.

Not part of the serial registry (the paper evaluates serial versions);
exposed separately for the threading extension and its bench.
"""

from __future__ import annotations

import numpy as np

from repro.runtime.decorators import traced
from repro.runtime.memory import Buffer
from repro.runtime.runtime import TracedRuntime, run_interleaved
from repro.workloads.base import InputSize, Workload

__all__ = ["ParallelFluidanimate"]


@traced("ExchangeGhosts")
def exchange_ghosts(
    rt: TracedRuntime, positions: Buffer, lo: int, hi: int, ghost: int, n: int
) -> None:
    """Read the neighbour slices' boundary particles (the ghost zones)."""
    left = (lo - ghost) % n
    if left + ghost <= n:
        positions.read_block(left, ghost)
    right = hi % n
    if right + ghost <= n:
        positions.read_block(right, ghost)
    rt.iops(2 * ghost)


@traced("ComputeForces")
def compute_forces(
    rt: TracedRuntime,
    positions: Buffer,
    forces: Buffer,
    lo: int,
    count: int,
    neighbours: int,
) -> None:
    pos = positions.read_block(lo, count)
    force = np.zeros(count)
    for shift in range(1, neighbours + 1):
        rt.flops(9 * count)
        delta = np.roll(pos, shift) - pos
        force += delta / (1.0 + delta * delta)
    rt.flops(4 * count)
    forces.write_block(force, lo)
    positions.write_block(pos + 0.001 * force, lo)


class ParallelFluidanimate(Workload):
    """Threaded SPH: grid partitions with per-step ghost-zone exchange."""
    name = "fluidanimate-parallel"
    suite = "parsec-parallel"
    description = "threaded SPH with ghost-zone exchange between partitions"

    PARAMS = {
        InputSize.SIMSMALL: {
            "n_particles": 512, "steps": 6, "n_threads": 4,
            "ghost": 16, "neighbours": 8,
        },
        InputSize.SIMMEDIUM: {
            "n_particles": 1024, "steps": 6, "n_threads": 4,
            "ghost": 16, "neighbours": 8,
        },
        InputSize.SIMLARGE: {
            "n_particles": 2048, "steps": 8, "n_threads": 8,
            "ghost": 16, "neighbours": 8,
        },
    }

    def main(self, rt: TracedRuntime) -> None:
        p = self.params
        n, n_threads = p["n_particles"], p["n_threads"]
        slice_len = n // n_threads
        rng = self.rng()

        positions = rt.arena.alloc_f64("pfa.positions", n)
        forces = rt.arena.alloc_f64("pfa.forces", n)
        positions.poke_block(rng.uniform(-50.0, 50.0, n))
        rt.syscall("read", output_bytes=positions.nbytes)

        def worker(tid: int):
            lo = (tid - 1) * slice_len
            hi = lo + slice_len

            def body():
                for _ in range(p["steps"]):
                    exchange_ghosts(rt, positions, lo, hi, p["ghost"], n)
                    compute_forces(
                        rt, positions, forces, lo, slice_len, p["neighbours"]
                    )
                    yield  # barrier: one step per quantum

            return body()

        run_interleaved(rt, {tid: worker(tid) for tid in range(1, n_threads + 1)})

        out = positions.read_block(0, n)
        rt.flops(n // 8)
        self.checksum = float(out.sum())
        rt.syscall("write", input_bytes=positions.nbytes)
