"""Miniature *libquantum* (SPEC): quantum register simulation.

The paper analyses libquantum alongside the PARSEC serial workloads in the
critical-path study and "find[s] a similar situation" to streamcluster:
many short dependency chains and a high theoretical parallelism limit
(Figure 13).  The miniature applies gate sequences to a state vector in
independent amplitude chunks: chunk *i* of gate *g* depends only on chunk
*i* of gate *g-1*, so the chains run parallel across chunks.
"""

from __future__ import annotations

import numpy as np

from repro.runtime.decorators import traced
from repro.runtime.memory import Buffer
from repro.runtime.runtime import TracedRuntime
from repro.workloads.base import InputSize, Workload
from repro.workloads.lib import LibEnv, op_new

__all__ = ["Libquantum"]


@traced("quantum_sigma_x")
def quantum_sigma_x(
    rt: TracedRuntime, state: Buffer, chunk: int, chunk_size: int
) -> None:
    """Pauli-X: swap amplitude pairs within one chunk."""
    amps = state.read_block(chunk * chunk_size, chunk_size)
    rt.flops(2 * chunk_size)
    flipped = amps.reshape(-1, 2)[:, ::-1].reshape(-1)
    state.write_block(flipped, chunk * chunk_size)


@traced("quantum_cnot")
def quantum_cnot(rt: TracedRuntime, state: Buffer, chunk: int, chunk_size: int) -> None:
    amps = state.read_block(chunk * chunk_size, chunk_size)
    rt.flops(3 * chunk_size)
    mask = np.arange(chunk_size) % 4 >= 2
    out = amps.copy()
    out[mask] = amps[mask][::-1] if mask.sum() % 2 == 0 else amps[mask]
    state.write_block(out, chunk * chunk_size)


@traced("quantum_toffoli")
def quantum_toffoli(rt: TracedRuntime, state: Buffer, chunk: int, chunk_size: int) -> None:
    amps = state.read_block(chunk * chunk_size, chunk_size)
    rt.flops(5 * chunk_size)
    phase = np.where(np.arange(chunk_size) % 8 == 7, -1.0, 1.0)
    state.write_block(amps * phase, chunk * chunk_size)


@traced("quantum_gate_apply")
def quantum_gate_apply(
    rt: TracedRuntime, state: Buffer, gate: int, n_chunks: int, chunk_size: int
) -> None:
    """Apply one gate chunk-by-chunk (the parallel fan of Figure 13)."""
    kernels = (quantum_sigma_x, quantum_cnot, quantum_toffoli)
    kernel = kernels[gate % len(kernels)]
    for chunk in range(n_chunks):
        rt.iops(3)
        rt.branch("gate.chunk", chunk + 1 < n_chunks)
        kernel(rt, state, chunk, chunk_size)


class Libquantum(Workload):
    """Quantum register simulation in independent amplitude chunks (SPEC)."""
    name = "libquantum"
    suite = "spec"
    description = "quantum register simulation (Shor building blocks)"

    PARAMS = {
        InputSize.SIMSMALL: {"n_chunks": 16, "chunk_size": 64, "n_gates": 24},
        InputSize.SIMMEDIUM: {"n_chunks": 24, "chunk_size": 64, "n_gates": 32},
        InputSize.SIMLARGE: {"n_chunks": 32, "chunk_size": 96, "n_gates": 48},
    }

    def main(self, rt: TracedRuntime) -> None:
        p = self.params
        n = p["n_chunks"] * p["chunk_size"]
        rng = self.rng()
        env = LibEnv.create(rt.arena)

        state = rt.arena.alloc_f64("lq.state", n)
        state.poke_block(rng.normal(0.0, 1.0, n) / np.sqrt(n))
        rt.syscall("read", output_bytes=64)
        op_new(rt, env, state.nbytes)

        for gate in range(p["n_gates"]):
            rt.iops(4)
            rt.branch("main.gate", gate + 1 < p["n_gates"])
            quantum_gate_apply(rt, state, gate, p["n_chunks"], p["chunk_size"])

        out = state.read_block(0, n)
        rt.flops(n // 8)
        self.checksum = float((out ** 2).sum())
        rt.syscall("write", input_bytes=64)
