"""Registry of all synthetic workloads."""

from __future__ import annotations

from typing import Dict, List, Type

from repro.workloads.base import InputSize, Workload
from repro.workloads.blackscholes import Blackscholes
from repro.workloads.bodytrack import Bodytrack
from repro.workloads.canneal import Canneal
from repro.workloads.dedup import Dedup
from repro.workloads.facesim import Facesim
from repro.workloads.ferret import Ferret
from repro.workloads.fluidanimate import Fluidanimate
from repro.workloads.freqmine import Freqmine
from repro.workloads.libquantum import Libquantum
from repro.workloads.raytrace import Raytrace
from repro.workloads.streamcluster import Streamcluster
from repro.workloads.swaptions import Swaptions
from repro.workloads.vips import Vips
from repro.workloads.x264 import X264

__all__ = [
    "WORKLOADS",
    "PARSEC_NAMES",
    "ALL_NAMES",
    "get_workload",
]

_CLASSES: List[Type[Workload]] = [
    Blackscholes,
    Bodytrack,
    Canneal,
    Dedup,
    Facesim,
    Ferret,
    Fluidanimate,
    Freqmine,
    Libquantum,
    Raytrace,
    Streamcluster,
    Swaptions,
    Vips,
    X264,
]

#: name -> workload class.
WORKLOADS: Dict[str, Type[Workload]] = {cls.name: cls for cls in _CLASSES}

#: The PARSEC subset (the paper's Figures 4-12 use these).
PARSEC_NAMES: List[str] = sorted(
    cls.name for cls in _CLASSES if cls.suite == "parsec"
)

#: Everything, including SPEC libquantum (Figure 13 adds it).
ALL_NAMES: List[str] = sorted(WORKLOADS)


def get_workload(name: str, size: InputSize | str = InputSize.SIMSMALL) -> Workload:
    """Instantiate a workload by benchmark name."""
    try:
        cls = WORKLOADS[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; available: {', '.join(ALL_NAMES)}"
        ) from None
    return cls(size)
