"""Miniature *fluidanimate*: SPH fluid simulation.

Section IV-C: "Fluidanimate's path is composed of a single function,
ComputeForces.  This function does the bulk of the work in fluidanimate,
contributing close to 90% of the operations in the entire workload."  The
theoretical parallelism limit is correspondingly low (Figure 13): each time
step's ``ComputeForces`` reads the particle state its previous call wrote,
so the heavy segments form one serial chain.

The miniature keeps that structure: ``ComputeForces`` is the fused
force-and-position kernel carrying ~90% of all operations and the step-to-
step data dependency; grid rebuilds, density passes and collision handling
are cheap side stages.
"""

from __future__ import annotations

import numpy as np

from repro.runtime.decorators import traced
from repro.runtime.memory import Buffer
from repro.runtime.runtime import TracedRuntime
from repro.workloads.base import InputSize, Workload
from repro.workloads.lib import LibEnv, op_new

__all__ = ["Fluidanimate"]


@traced("RebuildGrid")
def rebuild_grid(rt: TracedRuntime, positions: Buffer, cells: Buffer, n: int) -> None:
    """Re-bin particles into grid cells (integer work)."""
    pos = positions.read_block(0, n)
    rt.iops(3 * n)
    bins = (np.abs(pos).astype(np.int64)) % cells.length
    counts = np.bincount(bins, minlength=cells.length)
    cells.write_block(counts[: cells.length].astype(cells.dtype), 0)


@traced("ComputeDensities")
def compute_densities(
    rt: TracedRuntime, positions: Buffer, densities: Buffer, n: int
) -> None:
    pos = positions.read_block(0, n)
    rt.flops(4 * n)
    densities.write_block(1.0 / (1.0 + np.abs(pos)), 0)


@traced("ComputeForces")
def compute_forces(
    rt: TracedRuntime,
    positions: Buffer,
    densities: Buffer,
    forces: Buffer,
    n: int,
    neighbours: int,
) -> None:
    """The dominant kernel: pairwise interactions + semi-implicit update.

    Reads the positions written by the previous step's call (the serial
    dependency), and writes the next positions.
    """
    pos = positions.read_block(0, n)
    rho = densities.read_block(0, n)
    # Pairwise interactions against a sliding neighbour window; the gather
    # re-reads the position and density arrays (cell-neighbour traversal).
    positions.read_block(0, n)
    densities.read_block(0, n)
    force = np.zeros(n)
    for shift in range(1, neighbours + 1):
        rt.flops(9 * n)
        delta = np.roll(pos, shift) - pos
        force += delta / (1.0 + delta * delta) * np.roll(rho, shift)
    rt.flops(6 * n)
    forces.write_block(force, 0)
    positions.write_block(pos + 0.001 * force, 0)


@traced("ProcessCollisions")
def process_collisions(rt: TracedRuntime, positions: Buffer, n_edge: int) -> None:
    """Clamp boundary particles (touches only the domain edges)."""
    edge = positions.read_block(0, n_edge)
    rt.flops(2 * n_edge)
    positions.write_block(np.clip(edge, -100.0, 100.0), 0)


@traced("AdvanceParticles")
def advance_particles(
    rt: TracedRuntime, forces: Buffer, velocities: Buffer, n: int
) -> None:
    """Integrate velocities (small; off the main dependency chain)."""
    f = forces.read_block(0, n)
    v = velocities.read_block(0, n)
    rt.flops(2 * n)
    velocities.write_block(v + 0.001 * f, 0)


@traced("AdvanceFrame")
def advance_frame(
    rt: TracedRuntime,
    bufs: dict,
    n: int,
    neighbours: int,
    n_edge: int,
) -> None:
    rt.iops(14)
    rebuild_grid(rt, bufs["positions"], bufs["cells"], n)
    compute_densities(rt, bufs["positions"], bufs["densities"], n)
    compute_forces(
        rt, bufs["positions"], bufs["densities"], bufs["forces"], n, neighbours
    )
    process_collisions(rt, bufs["positions"], n_edge)
    advance_particles(rt, bufs["forces"], bufs["velocities"], n)


class Fluidanimate(Workload):
    """SPH fluid simulation dominated by ComputeForces (PARSEC miniature)."""
    name = "fluidanimate"
    description = "SPH fluid simulation dominated by ComputeForces"

    PARAMS = {
        InputSize.SIMSMALL: {"n_particles": 512, "steps": 12, "neighbours": 16},
        InputSize.SIMMEDIUM: {"n_particles": 1024, "steps": 12, "neighbours": 16},
        InputSize.SIMLARGE: {"n_particles": 2048, "steps": 16, "neighbours": 16},
    }

    def main(self, rt: TracedRuntime) -> None:
        p = self.params
        n = p["n_particles"]
        rng = self.rng()
        env = LibEnv.create(rt.arena)

        bufs = {
            "positions": rt.arena.alloc_f64("fa.positions", n),
            "densities": rt.arena.alloc_f64("fa.densities", n),
            "forces": rt.arena.alloc_f64("fa.forces", n),
            "velocities": rt.arena.alloc_f64("fa.velocities", n),
            "cells": rt.arena.alloc_i64("fa.cells", 64),
        }
        bufs["positions"].poke_block(rng.uniform(-50.0, 50.0, n))
        rt.syscall("read", output_bytes=bufs["positions"].nbytes)
        op_new(rt, env, 4 * n * 8)

        for step in range(p["steps"]):
            rt.iops(3000)  # scene bookkeeping + visualization staging in main
            rt.branch("main.step", step + 1 < p["steps"])
            advance_frame(rt, bufs, n, p["neighbours"], n_edge=max(8, n // 64))

        out = bufs["positions"].read_block(0, n)
        rt.flops(n // 8)
        self.checksum = float(out.sum())
        rt.syscall("write", input_bytes=bufs["positions"].nbytes)
