"""Miniature *blackscholes*: Black-Scholes option pricing.

PARSEC's blackscholes parses a portfolio from text and prices each option
with the closed-form Black-Scholes formula.  The paper's Table II top
candidates for it are ``strtof``, ``__ieee754_exp``/``expf``/``logf`` and
``__mpn_mul``; Table III's worst include ``dl_addr`` and ``free``.  The
miniature reproduces that inventory:

* ``main`` stages the option file, constructs the price vector
  (``std::vector``), parses fields with ``strtof`` (which occasionally
  calls ``__mpn_mul`` for scale factors), then runs the pricing driver.
* ``bs_thread`` loops over options calling ``BlkSchlsEqEuroNoDiv``.
* ``BlkSchlsEqEuroNoDiv`` reads one option record and evaluates the
  formula through the libm miniatures and ``CNDF``.
"""

from __future__ import annotations

import math

import numpy as np

from repro.runtime.decorators import traced
from repro.runtime.memory import Buffer
from repro.runtime.runtime import TracedRuntime
from repro.workloads.base import InputSize, Workload
from repro.workloads.lib import (
    LibEnv,
    call_exp,
    call_expf,
    call_log,
    call_logf,
    call_mpn_mul,
    call_sqrt,
    dl_addr,
    op_free,
    std_vector_ctor,
)

__all__ = ["Blackscholes"]

_FIELDS = 6  # spot, strike, rate, volatility, time, type


@traced("strtof")
def strtof(
    rt: TracedRuntime,
    env: LibEnv,
    text: Buffer,
    offset: int,
    out: Buffer,
    out_index: int,
) -> None:
    """Parse one 8-character fixed-point field into a float.

    Real strtof walks digits, validates, and scales by powers of ten; the
    scale step occasionally goes through the multi-precision multiply.
    """
    chars = text.read_block(offset, 8)
    rt.iops(26)
    value = 0
    for ch in chars.tolist():
        value = value * 10 + (ch - ord("0"))
    if out_index % 5 == 0:
        call_mpn_mul(rt, env, value & 0xFFFF, 100)
    out.write(out_index, value / 1e4)


@traced("CNDF")
def _cndf(rt: TracedRuntime, env: LibEnv) -> None:
    """Cumulative normal distribution, polynomial approximation."""
    x = float(env.frame.read(2))
    sign = x < 0.0
    x = abs(x)
    expval = call_exp(rt, env, -0.5 * x * x)
    rt.flops(22)
    k = 1.0 / (1.0 + 0.2316419 * x)
    poly = k * (0.31938153 + k * (-0.356563782 + k * (1.781477937
           + k * (-1.821255978 + k * 1.330274429))))
    result = 1.0 - expval * poly / math.sqrt(2.0 * math.pi)
    env.frame.write(3, (1.0 - result) if sign else result)


def cndf(rt: TracedRuntime, env: LibEnv, x: float) -> float:
    env.frame.write(2, x)
    _cndf(rt, env)
    return float(env.frame.read(3))


@traced("BlkSchlsEqEuroNoDiv")
def blk_schls(
    rt: TracedRuntime,
    env: LibEnv,
    options: Buffer,
    index: int,
    prices: Buffer,
) -> None:
    """Price one European option (no dividends)."""
    rec = options.read_block(index * _FIELDS, _FIELDS)
    spot, strike, rate, vol, time, otype = rec.tolist()
    time = max(time, 1e-3)
    vol = max(vol, 1e-3)
    strike = max(strike, 1e-3)
    spot = max(spot, 1e-3)

    log_term = call_logf(rt, env, spot / strike)
    sqrt_time = call_sqrt(rt, env, time)
    rt.flops(18)
    d1 = (log_term + (rate + 0.5 * vol * vol) * time) / (vol * sqrt_time)
    d2 = d1 - vol * sqrt_time
    n_d1 = cndf(rt, env, d1)
    n_d2 = cndf(rt, env, d2)
    discount = call_expf(rt, env, -rate * time)
    rt.flops(8)
    if otype < 0.5:
        price = spot * n_d1 - strike * discount * n_d2
    else:
        price = strike * discount * (1.0 - n_d2) - spot * (1.0 - n_d1)
    prices.write(index, price)


@traced("bs_thread")
def bs_thread(
    rt: TracedRuntime, env: LibEnv, options: Buffer, prices: Buffer, n: int
) -> None:
    """The pricing driver (PARSEC's worker loop, serial version)."""
    for i in range(n):
        # Loop bookkeeping, record addressing, option table walk, and the
        # NUM_RUNS accumulation PARSEC's driver performs inline.
        rt.iops(100)
        rt.branch("bs_thread.loop", i + 1 < n)
        blk_schls(rt, env, options, i, prices)


class Blackscholes(Workload):
    """Black-Scholes option pricing with text parsing (PARSEC miniature)."""
    name = "blackscholes"
    description = "Black-Scholes option pricing with text parsing"

    PARAMS = {
        InputSize.SIMSMALL: {"n_options": 120},
        InputSize.SIMMEDIUM: {"n_options": 240},
        InputSize.SIMLARGE: {"n_options": 480},
    }

    def main(self, rt: TracedRuntime) -> None:
        n = self.params["n_options"]
        rng = self.rng()
        env = LibEnv.create(rt.arena)
        text = rt.arena.alloc_u8("portfolio.txt", n * _FIELDS * 8)
        options = rt.arena.alloc_f64("options", n * _FIELDS)
        prices = rt.arena.alloc_f64("prices", n)

        # Stage the option file: fixed-point decimal fields as ASCII digits.
        digits = rng.integers(ord("0"), ord("9") + 1, size=text.length)
        text.poke_block(digits)
        rt.syscall("read", output_bytes=text.length)

        dl_addr(rt, env)  # loader resolves libm symbols on first use
        std_vector_ctor(rt, env, prices, prices.length)

        for i in range(n * _FIELDS):
            rt.branch("parse.loop", i + 1 < n * _FIELDS)
            strtof(rt, env, text, i * 8, options, i)

        bs_thread(rt, env, options, prices, n)

        total = prices.read_block(0, n)
        rt.flops(n)
        checksum = float(total.sum())
        rt.syscall("write", input_bytes=prices.nbytes)
        op_free(rt, env, 0)
        self.checksum = checksum
