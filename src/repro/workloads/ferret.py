"""Miniature *ferret*: content-based similarity search pipeline.

ferret is the third low-coverage application in Figure 7: the query driver
threads images through segmentation, feature extraction, indexing and
ranking with substantial per-stage glue of its own.  Hot kernels are small
relative to the pipeline bookkeeping, giving "fewer hot code regions".
"""

from __future__ import annotations

import numpy as np

from repro.runtime.decorators import traced
from repro.runtime.memory import Buffer
from repro.runtime.runtime import TracedRuntime
from repro.workloads.base import InputSize, Workload
from repro.workloads.lib import LibEnv, memcpy, op_new, string_compare

__all__ = ["Ferret"]


@traced("image_segment")
def image_segment(rt: TracedRuntime, image: Buffer, regions: Buffer, px: int) -> int:
    """Split the image into regions by intensity thresholding."""
    pixels = image.read_block(0, px)
    rt.flops(3 * px)
    labels = (pixels > pixels.mean()).astype(np.int64)
    regions.write_block(labels[: regions.length], 0)
    return int(labels.sum())


@traced("extract_features")
def extract_features(
    rt: TracedRuntime, image: Buffer, regions: Buffer, features: Buffer, px: int, dim: int
) -> None:
    """Per-region colour/texture moments."""
    pixels = image.read_block(0, px)
    labels = regions.read_block(0, min(regions.length, px))
    rt.flops(6 * px)
    vec = np.array(
        [float(np.abs(pixels[i::dim]).sum()) for i in range(dim)]
    )
    rt.flops(4 * dim)
    features.write_block(vec / (1.0 + np.abs(vec).max()) + labels[:dim] * 0.01, 0)


@traced("query_index")
def query_index(
    rt: TracedRuntime, features: Buffer, index_db: Buffer, hits: Buffer, dim: int, probes: int
) -> None:
    """LSH index probe: bucket reads dominate, little compute (comm-heavy)."""
    vec = features.read_block(0, dim)
    key = int(abs(vec.sum() * 1000))
    for i in range(probes):
        rt.iops(6)
        bucket = (key * (i + 1) * 2654435761) % max(1, index_db.length - dim)
        index_db.read_block(bucket, dim)
        hits.write(i, bucket)


@traced("emd")
def emd(rt: TracedRuntime, features: Buffer, index_db: Buffer, bucket: int, dim: int) -> float:
    """Earth-mover's distance between the query and one candidate."""
    a = features.read_block(0, dim)
    b = index_db.read_block(bucket, dim)
    rt.flops(12 * dim)
    return float(np.abs(np.sort(a) - np.sort(b)).sum())


@traced("rank_candidates")
def rank_candidates(
    rt: TracedRuntime, features: Buffer, index_db: Buffer, hits: Buffer, scores: Buffer,
    dim: int, probes: int,
) -> float:
    best = np.inf
    for i in range(probes):
        rt.iops(5)
        rt.branch("rank.loop", i + 1 < probes)
        bucket = int(hits.read(i))
        score = emd(rt, features, index_db, bucket, dim)
        scores.write(i, score)
        best = min(best, score)
    return best


class Ferret(Workload):
    """Content-based similarity search with heavy driver glue."""
    name = "ferret"
    description = "similarity-search pipeline with heavy driver glue"

    PARAMS = {
        InputSize.SIMSMALL: {"n_queries": 12, "px": 256, "dim": 16, "probes": 6, "db": 4096},
        InputSize.SIMMEDIUM: {"n_queries": 24, "px": 256, "dim": 16, "probes": 6, "db": 8192},
        InputSize.SIMLARGE: {"n_queries": 48, "px": 384, "dim": 16, "probes": 8, "db": 16384},
    }

    def main(self, rt: TracedRuntime) -> None:
        p = self.params
        px, dim, probes = p["px"], p["dim"], p["probes"]
        rng = self.rng()
        env = LibEnv.create(rt.arena)

        queries = rt.arena.alloc_f64("fr.queries", px * p["n_queries"])
        image = rt.arena.alloc_f64("fr.image", px)
        regions = rt.arena.alloc_i64("fr.regions", px)
        features = rt.arena.alloc_f64("fr.features", dim)
        index_db = rt.arena.alloc_f64("fr.index_db", p["db"])
        hits = rt.arena.alloc_i64("fr.hits", probes)
        scores = rt.arena.alloc_f64("fr.scores", probes)
        names = rt.arena.alloc_u8("fr.names", 64)

        queries.poke_block(rng.uniform(0.0, 255.0, queries.length))
        index_db.poke_block(rng.uniform(0.0, 1.0, index_db.length))
        names.poke_block(rng.integers(ord("a"), ord("z"), names.length))
        rt.syscall("read", output_bytes=queries.nbytes + index_db.nbytes)
        op_new(rt, env, index_db.nbytes)

        total = 0.0
        for q in range(p["n_queries"]):
            rt.branch("main.query", q + 1 < p["n_queries"])
            # Pipeline stage management, queue shuffling, result assembly --
            # the driver glue that keeps ferret's candidate coverage low
            # ("fewer hot code regions", Figure 7).
            rt.iops(4200)
            memcpy(rt, image, 0, queries, q * px, px)
            image_segment(rt, image, regions, px)
            extract_features(rt, image, regions, features, px, dim)
            query_index(rt, features, index_db, hits, dim, probes)
            total += rank_candidates(
                rt, features, index_db, hits, scores, dim, probes
            )
            string_compare(rt, names, 0, names, 32, 16)
            rt.iops(2800)

        self.checksum = total
        rt.syscall("write", input_bytes=scores.nbytes)
