"""Miniature *swaptions*: HJM Monte-Carlo swaption pricing.

swaptions is one of the paper's three low-coverage applications (Figure 7):
its serial driver aggregates simulation statistics inline, so a large share
of the execution is driver self-cost rather than callable kernels.  The
kernels below it mirror PARSEC's hot functions: ``RanUnif`` (random draws),
``HJM_SimPath_Forward_Blocking`` (forward-rate path simulation) and
``Discount_Factors_Blocking``.
"""

from __future__ import annotations

import numpy as np

from repro.runtime.decorators import traced
from repro.runtime.memory import Buffer
from repro.runtime.runtime import TracedRuntime
from repro.workloads.base import InputSize, Workload
from repro.workloads.lib import LibEnv, call_exp, call_sqrt, op_new, std_vector_ctor

__all__ = ["Swaptions"]


@traced("RanUnif")
def ran_unif(rt: TracedRuntime, seed: Buffer, out: Buffer, count: int) -> None:
    """Lehmer RNG filling a block of uniforms (serialised through the seed)."""
    s = int(seed.read(0))
    values = np.empty(count)
    for i in range(count):
        s = (16807 * s) % 2147483647
        values[i] = s / 2147483647.0
    rt.iops(4 * count)
    seed.write(0, s)
    out.write_block(values, 0)


@traced("HJM_SimPath_Forward_Blocking")
def hjm_sim_path(
    rt: TracedRuntime,
    env: LibEnv,
    rands: Buffer,
    factors: Buffer,
    path: Buffer,
    tenors: int,
    steps: int,
) -> None:
    """Evolve the forward-rate curve along one simulated path."""
    vol = factors.read_block(0, tenors)
    curve = np.full(tenors, 0.05)
    for t in range(steps):
        shocks = rands.read_block((t * tenors) % max(1, rands.length - tenors), tenors)
        rt.flops(7 * tenors)
        curve = curve + vol * 0.01 * (shocks - 0.5) + 0.0001
        path.write_block(curve, t * tenors)
        rt.branch("hjm.step", t + 1 < steps)
    drift = call_exp(rt, env, -float(curve.mean()))
    rt.flops(4)
    path.write(0, curve[0] * drift)


@traced("Discount_Factors_Blocking")
def discount_factors(
    rt: TracedRuntime, env: LibEnv, path: Buffer, discounts: Buffer, tenors: int, steps: int
) -> None:
    total = np.zeros(tenors)
    for t in range(steps):
        rates = path.read_block(t * tenors, tenors)
        rt.flops(2 * tenors)
        total += rates
    scale = call_exp(rt, env, -float(total.mean()) * 0.01)
    rt.flops(2 * tenors)
    discounts.write_block(np.exp(-total * 0.01) * scale, 0)


@traced("HJM_Swaption_Blocking")
def hjm_swaption(
    rt: TracedRuntime,
    env: LibEnv,
    bufs: dict,
    tenors: int,
    steps: int,
    trials: int,
) -> float:
    """Price one swaption by Monte Carlo over ``trials`` paths."""
    payoff_sum = 0.0
    for trial in range(trials):
        rt.iops(10)
        rt.branch("swaption.trial", trial + 1 < trials)
        ran_unif(rt, bufs["seed"], bufs["rands"], tenors * 2)
        hjm_sim_path(rt, env, bufs["rands"], bufs["factors"], bufs["path"], tenors, steps)
        discount_factors(rt, env, bufs["path"], bufs["discounts"], tenors, steps)
        d = bufs["discounts"].read_block(0, tenors)
        rt.flops(2 * tenors)
        payoff_sum += max(0.0, float(d.mean()) - 0.6)
    sigma = call_sqrt(rt, env, payoff_sum / max(trials, 1))
    rt.flops(6)
    return payoff_sum / trials + 1e-6 * sigma


class Swaptions(Workload):
    """HJM Monte-Carlo swaption pricing with a self-heavy driver."""
    name = "swaptions"
    description = "HJM Monte-Carlo swaption pricing with a self-heavy driver"

    PARAMS = {
        InputSize.SIMSMALL: {"n_swaptions": 8, "tenors": 16, "steps": 8, "trials": 6},
        InputSize.SIMMEDIUM: {"n_swaptions": 16, "tenors": 16, "steps": 8, "trials": 6},
        InputSize.SIMLARGE: {"n_swaptions": 32, "tenors": 16, "steps": 10, "trials": 8},
    }

    def main(self, rt: TracedRuntime) -> None:
        p = self.params
        tenors, steps = p["tenors"], p["steps"]
        rng = self.rng()
        env = LibEnv.create(rt.arena)

        bufs = {
            "seed": rt.arena.alloc_i64("sw.seed", 2),
            "rands": rt.arena.alloc_f64("sw.rands", tenors * 2),
            "factors": rt.arena.alloc_f64("sw.factors", tenors),
            "path": rt.arena.alloc_f64("sw.path", tenors * steps),
            "discounts": rt.arena.alloc_f64("sw.discounts", tenors),
            "prices": rt.arena.alloc_f64("sw.prices", p["n_swaptions"]),
        }
        bufs["seed"].poke(0, 271828183)
        bufs["factors"].poke_block(rng.uniform(0.5, 1.5, tenors))
        rt.syscall("read", output_bytes=bufs["factors"].nbytes)

        op_new(rt, env, bufs["path"].nbytes)
        std_vector_ctor(rt, env, bufs["prices"], bufs["prices"].length)

        # Serial driver: inline statistics aggregation dominates (low
        # coverage, as in Figure 7).
        acc = 0.0
        for i in range(p["n_swaptions"]):
            rt.branch("main.swaption", i + 1 < p["n_swaptions"])
            price = hjm_swaption(rt, env, bufs, tenors, steps, p["trials"])
            # Inline convergence statistics / greeks bookkeeping: the serial
            # driver self-cost behind swaptions' low Figure 7 coverage.
            rt.iops(6000)
            rt.flops(3000)
            acc += price
            bufs["prices"].write(i, price)

        self.checksum = acc
        rt.syscall("write", input_bytes=bufs["prices"].nbytes)
