"""Miniature *x264*: H.264 video encoding.

Per-macroblock motion estimation re-reads the reference-frame search window
many times (strong line re-use), DCT/quantisation are arithmetic-dense, and
CABAC entropy coding is a serial integer chain threaded through the coder
state -- which keeps x264's theoretical function-level parallelism modest.
"""

from __future__ import annotations

import numpy as np

from repro.runtime.decorators import traced
from repro.runtime.memory import Buffer
from repro.runtime.runtime import TracedRuntime
from repro.workloads.base import InputSize, Workload
from repro.workloads.lib import LibEnv, memcpy, op_new

__all__ = ["X264"]

_MB = 16  # macroblock pixels (1-D miniature)


@traced("x264_pixel_sad")
def pixel_sad(
    rt: TracedRuntime, frame: Buffer, ref: Buffer, mb_off: int, cand_off: int
) -> int:
    cur = frame.read_block(mb_off, _MB)
    cand = ref.read_block(cand_off, _MB)
    rt.iops(3 * _MB)
    return int(np.abs(cur - cand).sum())


@traced("motion_search")
def motion_search(
    rt: TracedRuntime, frame: Buffer, ref: Buffer, mb_off: int, range_: int
) -> int:
    """Diamond search over the reference window (re-reads it heavily)."""
    best = np.iinfo(np.int64).max
    best_off = mb_off
    for step in range(range_):
        rt.iops(6)
        rt.branch("me.step", step + 1 < range_)
        cand = (mb_off + step * 4) % max(1, ref.length - _MB)
        sad = pixel_sad(rt, frame, ref, mb_off, cand)
        if sad < best:
            best = sad
            best_off = cand
    return best_off


@traced("dct4x4")
def dct4x4(rt: TracedRuntime, frame: Buffer, ref: Buffer, coeffs: Buffer, mb_off: int, pred_off: int) -> None:
    cur = frame.read_block(mb_off, _MB)
    pred = ref.read_block(pred_off, _MB)
    rt.iops(8 * _MB)
    residual = cur - pred
    coeffs.write_block(np.cumsum(residual) - residual.mean(), 0)


@traced("quant4x4")
def quant4x4(rt: TracedRuntime, coeffs: Buffer, qp: int) -> None:
    c = coeffs.read_block(0, _MB)
    rt.iops(2 * _MB)
    coeffs.write_block((c / (1 + qp)).astype(coeffs.dtype), 0)


@traced("cabac_encode")
def cabac_encode(
    rt: TracedRuntime, coeffs: Buffer, state: Buffer, bitstream: Buffer, out_pos: int
) -> int:
    """Binary arithmetic coding: serialised through the coder state."""
    c = coeffs.read_block(0, _MB)
    low = int(state.read(0))
    rng_ = int(state.read(1))
    rt.iops(7 * _MB)
    for v in c.tolist():
        low = (low * 3 + int(v)) & 0xFFFFFF
        rng_ = (rng_ >> 1) | 0x10000
    state.write(0, low)
    state.write(1, rng_)
    n_out = max(2, _MB // 4)
    bitstream.write_block(
        np.full(n_out, low & 0xFF, dtype=bitstream.dtype),
        out_pos % max(1, bitstream.length - n_out),
    )
    return n_out


@traced("x264_macroblock_analyse")
def mb_analyse(
    rt: TracedRuntime, frame: Buffer, ref: Buffer, mb_off: int, search_range: int
) -> int:
    """Mode decision: probe inter cost via motion search, compare to intra."""
    rt.iops(24)  # lambda/cost setup, neighbour MV prediction
    pred = motion_search(rt, frame, ref, mb_off, search_range)
    intra_probe = frame.read_block(mb_off, _MB)
    rt.iops(2 * _MB)  # intra SATD estimate
    return pred


@traced("x264_encoder_encode")
def encoder_encode(
    rt: TracedRuntime,
    env: LibEnv,
    frame: Buffer,
    ref: Buffer,
    coeffs: Buffer,
    state: Buffer,
    bitstream: Buffer,
    n_mbs: int,
    search_range: int,
    qp: int,
) -> int:
    out_pos = 0
    for mb in range(n_mbs):
        rt.iops(14)
        rt.branch("enc.mb", mb + 1 < n_mbs)
        mb_off = mb * _MB
        pred = mb_analyse(rt, frame, ref, mb_off, search_range)
        dct4x4(rt, frame, ref, coeffs, mb_off, pred)
        quant4x4(rt, coeffs, qp)
        out_pos += cabac_encode(rt, coeffs, state, bitstream, out_pos)
    # Reconstruct the reference for the next frame.
    memcpy(rt, ref, 0, frame, 0, min(frame.length, ref.length))
    return out_pos


class X264(Workload):
    """H.264 encoding: motion search, DCT/quant, serial CABAC."""
    name = "x264"
    description = "H.264 encoding: motion search, DCT, CABAC"

    PARAMS = {
        InputSize.SIMSMALL: {"n_frames": 3, "n_mbs": 16, "search_range": 8, "qp": 6},
        InputSize.SIMMEDIUM: {"n_frames": 4, "n_mbs": 24, "search_range": 8, "qp": 6},
        InputSize.SIMLARGE: {"n_frames": 6, "n_mbs": 32, "search_range": 10, "qp": 6},
    }

    def main(self, rt: TracedRuntime) -> None:
        p = self.params
        n_px = p["n_mbs"] * _MB
        rng = self.rng()
        env = LibEnv.create(rt.arena)

        video = rt.arena.alloc_i64("x264.video", n_px * p["n_frames"])
        frame = rt.arena.alloc_i64("x264.frame", n_px)
        ref = rt.arena.alloc_i64("x264.ref", n_px)
        coeffs = rt.arena.alloc_f64("x264.coeffs", _MB)
        state = rt.arena.alloc_i64("x264.cabac_state", 4)
        bitstream = rt.arena.alloc_u8("x264.bitstream", 4096)

        video.poke_block(rng.integers(0, 256, video.length))
        state.poke(1, 0x1FE)
        rt.syscall("read", output_bytes=video.nbytes)
        op_new(rt, env, bitstream.length)

        total_bits = 0
        for f in range(p["n_frames"]):
            rt.iops(800)  # rate-control and lookahead bookkeeping in main
            rt.branch("main.frame", f + 1 < p["n_frames"])
            memcpy(rt, frame, 0, video, f * n_px, n_px)
            total_bits += encoder_encode(
                rt, env, frame, ref, coeffs, state, bitstream,
                p["n_mbs"], p["search_range"], p["qp"],
            )

        self.checksum = float(total_bits)
        rt.syscall("write", input_bytes=total_bits)
