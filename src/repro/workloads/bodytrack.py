"""Miniature *bodytrack*: particle-filter body tracking over camera images.

"In the bodytrack benchmark, a human body is tracked with multiple cameras
through an image sequence"; ``ImageMeasurements::ImageErrorInside``
"measures the 'Silhouette' error of a complete body on all camera images"
and appears twice in Table II (two calling contexts -- here likelihood
evaluation and particle initialisation).  ``FlexImage::Set`` "initializes an
image and is mostly composed of memcopy calls".  Table III's worst bodytrack
candidates are the ``std::vector`` and ``DMatrix`` constructors plus stdio
helpers (``_IO_file_xsgetn``, ``_IO_sputbackc``), reproduced in setup and
frame reading.
"""

from __future__ import annotations

import numpy as np

from repro.runtime.decorators import traced
from repro.runtime.memory import Buffer
from repro.runtime.runtime import TracedRuntime
from repro.workloads.base import InputSize, Workload
from repro.workloads.lib import (
    LibEnv,
    io_file_xsgetn,
    io_sputbackc,
    memcpy,
    op_new,
    std_vector_ctor,
)

__all__ = ["Bodytrack"]


@traced("DMatrix")
def dmatrix_ctor(rt: TracedRuntime, env: LibEnv, storage: Buffer, rows: int, cols: int) -> None:
    """Dense-matrix construction: allocation plus zero fill (Table III)."""
    op_new(rt, env, rows * cols * 8)
    rt.iops(8)
    count = min(rows * cols, storage.length)
    storage.write_block(np.zeros(count), 0)


@traced("FlexImage::Set")
def fleximage_set(
    rt: TracedRuntime, dst: Buffer, src: Buffer, count: int
) -> None:
    """Image initialisation: "mostly composed of memcopy calls"."""
    rt.iops(6)
    half = count // 2
    memcpy(rt, dst, 0, src, 0, half)
    memcpy(rt, dst, half, src, half, count - half)


@traced("ImageMeasurements::ImageErrorInside")
def image_error_inside(
    rt: TracedRuntime,
    image: Buffer,
    model: Buffer,
    errors: Buffer,
    slot: int,
    row0: int,
    width: int,
    n_rows: int,
) -> None:
    """Silhouette error of the projected body over image rows.

    As in PhysBAM/bodytrack, the per-camera error lands in a measurement
    array in memory -- which is what makes the caller's consumption of it
    visible to Sigil's dependency chains.
    """
    body = model.read_block(0, model.length)
    err = 0.0
    for r in range(n_rows):
        row = image.read_block((row0 + r) * width, width)
        rt.flops(4 * width + model.length)
        err += float(np.abs(row[: model.length] - body).sum())
    errors.write(slot, err)


@traced("ImageMeasurements::EdgeError")
def edge_error(
    rt: TracedRuntime, image: Buffer, errors: Buffer, slot: int, row0: int, width: int
) -> None:
    row = image.read_block(row0 * width, width)
    grad = np.abs(np.diff(row))
    rt.flops(3 * width)
    errors.write(slot, float(grad.sum()))


@traced("ReadFrame")
def read_frame(
    rt: TracedRuntime, filebuf: Buffer, image: Buffer, frame: int, count: int
) -> None:
    """Decode one camera frame from the stdio buffer."""
    pos = (frame * count) % max(1, filebuf.length - count)
    io_file_xsgetn(rt, image, 0, filebuf, pos, count)
    io_sputbackc(rt, filebuf, pos)
    rt.iops(20)


@traced("InitializeParticles")
def initialize_particles(
    rt: TracedRuntime,
    env: LibEnv,
    particles: Buffer,
    errors: Buffer,
    image: Buffer,
    model: Buffer,
    n_particles: int,
    width: int,
) -> None:
    """Seed the filter; evaluates the error once (second IEI context)."""
    std_vector_ctor(rt, env, particles, particles.length)
    rt.iops(4 * n_particles)
    image_error_inside(rt, image, model, errors, 0, 0, width, 2)
    errors.read(0)
    particles.write_block(np.linspace(0.0, 1.0, particles.length), 0)


@traced("CalcLikelihood")
def calc_likelihood(
    rt: TracedRuntime,
    particles: Buffer,
    weights: Buffer,
    errors: Buffer,
    image: Buffer,
    model: Buffer,
    index: int,
    width: int,
    n_rows: int,
) -> None:
    """Project one particle's pose and score it against the frame."""
    pose = float(particles.read(index))
    rt.iops(10)
    image_error_inside(rt, image, model, errors, 0, index % 4, width, n_rows)
    edge_error(rt, image, errors, 1, index % 8, width)
    err = float(errors.read(0)) + float(errors.read(1))
    rt.flops(6)
    weights.write(index, -err * (1.0 + 1e-3 * pose))


@traced("mainPoseTracking")
def main_pose_tracking(
    rt: TracedRuntime,
    particles: Buffer,
    weights: Buffer,
    errors: Buffer,
    image: Buffer,
    model: Buffer,
    n_particles: int,
    width: int,
    n_rows: int,
) -> None:
    """Per-frame particle filter update.

    The driver checks the effective sample size every few particles --
    consuming child output mid-loop, which keeps the theoretical
    function-level parallelism bounded (Figure 13).
    """
    for i in range(n_particles):
        rt.iops(8)
        rt.branch("track.particle", i + 1 < n_particles)
        calc_likelihood(
            rt, particles, weights, errors, image, model, i, width, n_rows
        )
        if i % 8 == 7:
            weights.read(i)  # effective-sample-size check
            rt.iops(12)
    w = weights.read_block(0, n_particles)
    rt.flops(3 * n_particles)
    particles.write_block(np.cumsum(np.abs(w))[: particles.length] * 1e-3, 0)


class Bodytrack(Workload):
    """Particle-filter body tracking across camera frames (PARSEC miniature)."""
    name = "bodytrack"
    description = "particle-filter body tracking across camera frames"

    PARAMS = {
        InputSize.SIMSMALL: {
            "n_particles": 24, "n_frames": 3, "width": 64, "n_rows": 4, "model": 32,
        },
        InputSize.SIMMEDIUM: {
            "n_particles": 32, "n_frames": 4, "width": 64, "n_rows": 5, "model": 32,
        },
        InputSize.SIMLARGE: {
            "n_particles": 48, "n_frames": 5, "width": 96, "n_rows": 6, "model": 48,
        },
    }

    def main(self, rt: TracedRuntime) -> None:
        p = self.params
        width = p["width"]
        image_px = width * 16
        rng = self.rng()
        env = LibEnv.create(rt.arena)

        filebuf = rt.arena.alloc_f64("bt.video", image_px * (p["n_frames"] + 1))
        staging = rt.arena.alloc_f64("bt.staging", image_px)
        image = rt.arena.alloc_f64("bt.image", image_px)
        model = rt.arena.alloc_f64("bt.model", p["model"])
        particles = rt.arena.alloc_f64("bt.particles", p["n_particles"])
        weights = rt.arena.alloc_f64("bt.weights", p["n_particles"])
        errors = rt.arena.alloc_f64("bt.errors", 8)
        matrices = rt.arena.alloc_f64("bt.matrices", 64)

        filebuf.poke_block(rng.uniform(0.0, 255.0, filebuf.length))
        model.poke_block(rng.uniform(0.0, 255.0, model.length))
        rt.syscall("read", output_bytes=filebuf.nbytes)

        dmatrix_ctor(rt, env, matrices, 8, 8)
        dmatrix_ctor(rt, env, matrices, 8, 8)
        initialize_particles(
            rt, env, particles, errors, image, model, p["n_particles"], width
        )

        for frame in range(p["n_frames"]):
            rt.iops(1500)  # pose I/O, annealing schedule updates in main
            rt.branch("main.frame", frame + 1 < p["n_frames"])
            read_frame(rt, filebuf, staging, frame, image_px)
            fleximage_set(rt, image, staging, image_px)
            main_pose_tracking(
                rt, particles, weights, errors, image, model,
                p["n_particles"], width, p["n_rows"],
            )

        out = particles.read_block(0, particles.length)
        rt.flops(4)
        self.checksum = float(out.sum())
        rt.syscall("write", input_bytes=particles.nbytes)
