"""Miniature *vips*: image transformation pipeline.

The paper drills into vips for the data re-use study (section IV-B):

* ``conv_gen`` -- separable convolution over tiles.  Each input row is
  re-read once per kernel tap while the output window slides over it, and
  boundary rows are revisited for normalisation at the end of the (long)
  per-tile call: its re-use lifetime histogram has "a long tail and a
  central peak" (Figure 10).
* ``imb_XYZ2Lab`` -- colourspace conversion running in short per-row calls
  that hammer a small look-up table: re-use lifetimes are short, "a peak at
  0 re-use and a short tail" (Figure 11).
* ``affine_gen`` -- resampling with row interpolation (modest re-use).

These three are "the three biggest contributors to the total unique data
bytes processed by the benchmark ... each of their individual contributions
being close to 10%", with the rest spread across numerous smaller helpers;
``conv_gen`` appears in two calling contexts (``conv_gen(1)``/``(2)`` in
Figure 9), here via the blur and sharpen passes.
"""

from __future__ import annotations

import numpy as np

from repro.runtime.decorators import traced
from repro.runtime.memory import Buffer
from repro.runtime.runtime import TracedRuntime
from repro.workloads.base import InputSize, Workload
from repro.workloads.lib import LibEnv, memcpy, op_new, std_vector_ctor

__all__ = ["Vips"]


@traced("im_prepare")
def im_prepare(rt: TracedRuntime, region: Buffer, src: Buffer, start: int, count: int) -> None:
    """Stage a region descriptor + pixels for a downstream stage."""
    data = src.read_block(start, count)
    rt.iops(count // 8 + 6)
    region.write_block(data, 0)


@traced("affine_gen")
def affine_gen(
    rt: TracedRuntime,
    src: Buffer,
    dst: Buffer,
    width: int,
    row0: int,
    n_rows: int,
) -> None:
    """Resample rows: each output row interpolates two source rows."""
    for y in range(row0, row0 + n_rows):
        upper = src.read_block(y * width, width)
        lower = src.read_block(min(y + 1, row0 + n_rows - 1) * width, width)
        rt.flops(3 * width)
        dst.write_block(0.625 * upper + 0.375 * lower, y * width)
        rt.branch("affine.row", y + 1 < row0 + n_rows)


@traced("conv_gen")
def conv_gen(
    rt: TracedRuntime,
    src: Buffer,
    dst: Buffer,
    width: int,
    height: int,
    taps: int,
) -> None:
    """Vertical convolution over a whole tile (one long call).

    Input row ``y`` is read by output rows ``y-taps+1 .. y``: every byte is
    re-used ``taps-1`` times with a lifetime spanning ``taps`` row
    iterations (the histogram's central peak).  Boundary rows are re-read
    at the end of the call for edge normalisation (the long tail).
    """
    acc = np.zeros(width)
    for y in range(height):
        rows = [
            src.read_block(min(y + t, height - 1) * width, width)
            for t in range(taps)
        ]
        rt.flops((2 * taps + 1) * width)
        acc = sum(rows) / taps
        dst.write_block(acc, y * width)
        rt.branch("conv.row", y + 1 < height)
    # Edge normalisation: revisit sample rows across the tile at the end of
    # the call.  Rows read early are re-read late -> lifetimes spread from
    # short to the full call span (Figure 10's long tail).
    for y in range(0, height, 8):
        edge = src.read_block(y * width, width)
        rt.flops(width)
        dst.write_block(dst.read_block(y * width, width) + edge / taps, y * width)


@traced("imb_XYZ2Lab")
def imb_xyz2lab(
    rt: TracedRuntime,
    src: Buffer,
    dst: Buffer,
    lut: Buffer,
    row_start: int,
    width: int,
) -> None:
    """Convert one row of pixels through the cube-root look-up table.

    Short call, tight LUT re-use: re-use lifetimes land in the lowest bin.
    """
    pixels = src.read_block(row_start, width)
    for i in range(0, width, 8):
        lut.read_block(int(abs(pixels[i])) % (lut.length - 8), 8)
        rt.flops(24)
    rt.flops(2 * width)
    dst.write_block(np.cbrt(np.abs(pixels)) * 116.0 - 16.0, row_start)


@traced("im_embed")
def im_embed(rt: TracedRuntime, src: Buffer, dst: Buffer, width: int, height: int) -> None:
    """Pad the image border: edge rows are replicated (re-read) outward."""
    for y in range(height):
        row = src.read_block(y * width, width)
        rt.flops(width)
        dst.write_block(row, y * width)
        rt.branch("embed.row", y + 1 < height)
    # Border replication re-reads the first and last rows a few times.
    for rep in range(3):
        src.read_block(0, width)
        src.read_block((height - 1) * width, width)
        rt.flops(width // 2)


@traced("im_lintra")
def im_lintra(
    rt: TracedRuntime, src: Buffer, dst: Buffer, params: Buffer, width: int, height: int
) -> None:
    """Linear transform a*x + b over the whole image."""
    params.read_block(0, 2)           # validate coefficients...
    coeffs = params.read_block(0, 2)  # ...then load them (tight re-use)
    rt.iops(6)
    for y in range(height):
        row = src.read_block(y * width, width)
        rt.flops(2 * width)
        dst.write_block(float(coeffs[0]) * row + float(coeffs[1]), y * width)
        rt.branch("lintra.row", y + 1 < height)


@traced("im_wrapmany")
def im_wrapmany(rt: TracedRuntime, bufs: list, width: int) -> None:
    """Pipeline glue: validate stage buffers (small)."""
    rt.iops(8 * len(bufs))
    for buf in bufs:
        buf.read_block(0, min(8, buf.length))


@traced("im_generate")
def im_generate(
    rt: TracedRuntime,
    env: LibEnv,
    stages: dict,
    width: int,
    height: int,
    tile_rows: int,
    taps: int,
) -> None:
    """Demand-driven pipeline driver:
    embed -> affine -> blur -> sharpen -> lintra -> Lab."""
    src, embed, affine, blur, sharp, linear, lab, lut, region = (
        stages["src"],
        stages["embed"],
        stages["affine"],
        stages["blur"],
        stages["sharp"],
        stages["linear"],
        stages["lab"],
        stages["lut"],
        stages["region"],
    )
    im_wrapmany(rt, [src, embed, affine, blur, sharp, linear, lab], width)
    im_embed(rt, src, embed, width, height)
    for row0 in range(0, height, tile_rows):
        rt.iops(20)  # tile scheduling
        rt.branch("generate.tile", row0 + tile_rows < height)
        n = min(tile_rows, height - row0)
        im_prepare(rt, region, embed, row0 * width, min(64, embed.length))
        affine_gen(rt, embed, affine, width, row0, n)
    # Context 1: blur pass over the affine output (whole image, long calls).
    im_blur(rt, affine, blur, width, height, taps)
    # Context 2: sharpen pass re-runs conv_gen over the blurred image.
    im_sharpen(rt, blur, sharp, width, height, taps)
    im_lintra(rt, sharp, linear, stages["params"], width, height)
    for y in range(height):
        rt.branch("generate.lab", y + 1 < height)
        imb_xyz2lab(rt, linear, lab, lut, y * width, width)


@traced("im_conv")
def im_blur(rt: TracedRuntime, src: Buffer, dst: Buffer, width: int, height: int, taps: int) -> None:
    rt.iops(12)
    conv_gen(rt, src, dst, width, height, taps)


@traced("im_sharpen")
def im_sharpen(rt: TracedRuntime, src: Buffer, dst: Buffer, width: int, height: int, taps: int) -> None:
    rt.iops(12)
    conv_gen(rt, src, dst, width, height, max(2, taps - 2))


class Vips(Workload):
    """Image pipeline: embed, affine, convolutions, linear, Lab stages."""
    name = "vips"
    description = "image pipeline: affine resample, convolutions, Lab conversion"

    PARAMS = {
        InputSize.SIMSMALL: {"width": 48, "height": 64, "tile_rows": 8, "taps": 5},
        InputSize.SIMMEDIUM: {"width": 64, "height": 96, "tile_rows": 8, "taps": 5},
        InputSize.SIMLARGE: {"width": 96, "height": 128, "tile_rows": 8, "taps": 5},
    }

    def main(self, rt: TracedRuntime) -> None:
        p = self.params
        width, height = p["width"], p["height"]
        n_px = width * height
        rng = self.rng()
        env = LibEnv.create(rt.arena)

        stages = {
            "src": rt.arena.alloc_f64("vips.src", n_px),
            "embed": rt.arena.alloc_f64("vips.embed", n_px),
            "affine": rt.arena.alloc_f64("vips.affine", n_px),
            "blur": rt.arena.alloc_f64("vips.blur", n_px),
            "sharp": rt.arena.alloc_f64("vips.sharp", n_px),
            "linear": rt.arena.alloc_f64("vips.linear", n_px),
            "lab": rt.arena.alloc_f64("vips.lab", n_px),
            "lut": rt.arena.alloc_f64("vips.lut", 256),
            "region": rt.arena.alloc_f64("vips.region", 64),
            "params": rt.arena.alloc_f64("vips.params", 8),
        }
        stages["src"].poke_block(rng.uniform(0.0, 255.0, n_px))
        stages["lut"].poke_block(np.linspace(0.0, 1.0, 256))
        stages["params"].poke_block([1.02, -3.5, 0, 0, 0, 0, 0, 0])
        rt.syscall("read", output_bytes=stages["src"].nbytes)

        rt.iops(3000)  # CLI parsing, operation graph setup in main
        op_new(rt, env, n_px * 8)
        std_vector_ctor(rt, env, stages["region"], stages["region"].length)
        im_generate(rt, env, stages, width, height, p["tile_rows"], p["taps"])

        # The kernel writes the image out directly from the Lab buffer; main
        # only samples a strip for its completion checksum.
        stages["lab"].read_block(0, width)
        rt.flops(width)
        self.checksum = float(stages["lab"].peek_block(0, n_px).sum())
        rt.syscall("write", input_bytes=stages["lab"].nbytes)
