"""Workload framework: miniature PARSEC-like programs on the traced runtime.

The paper evaluates Sigil on serial PARSEC-2.1 workloads (plus SPEC
libquantum).  Those binaries cannot run under a pure-Python substrate, so
each workload here is a *synthetic miniature*: a small real program whose
function inventory, call structure, and dataflow shape mirror the original
benchmark's hot paths as the paper describes them.  They compute real
results (checked by tests) -- they are programs, not event generators.

Every workload:

* stages its input with untraced pokes plus a ``read`` syscall (mirroring
  how file data enters a real process without Valgrind seeing the kernel's
  stores),
* runs a ``main``-rooted call tree of traced kernels, and
* emits results through a ``write`` syscall.

Input sizes scale like PARSEC's simsmall / simmedium / simlarge.
"""

from __future__ import annotations

import abc
import enum
import zlib
from typing import Any, ClassVar, Dict, Mapping, Optional

import numpy as np

from repro.runtime.runtime import TracedRuntime
from repro.trace.observer import TraceObserver

__all__ = ["InputSize", "Workload"]


class InputSize(str, enum.Enum):
    """PARSEC-style input scales."""

    SIMSMALL = "simsmall"
    SIMMEDIUM = "simmedium"
    SIMLARGE = "simlarge"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class Workload(abc.ABC):
    """Base class: a named, sized, deterministic traced program.

    Subclasses define ``PARAMS`` (per-size parameter dicts) and ``main``
    (the program body, which receives the :class:`TracedRuntime` whose
    function stack already contains ``main``).
    """

    #: Benchmark name as the paper reports it (e.g. ``"blackscholes"``).
    name: ClassVar[str] = ""
    #: Originating suite: ``"parsec"`` or ``"spec"``.
    suite: ClassVar[str] = "parsec"
    #: One-line description of what the miniature models.
    description: ClassVar[str] = ""
    #: Per-size parameters.
    PARAMS: ClassVar[Mapping[InputSize, Mapping[str, Any]]] = {}

    def __init__(self, size: InputSize | str = InputSize.SIMSMALL):
        self.size = InputSize(size)
        if self.size not in self.PARAMS:
            raise ValueError(f"{self.name}: no parameters for size {self.size}")

    @property
    def params(self) -> Dict[str, Any]:
        return dict(self.PARAMS[self.size])

    def rng(self) -> np.random.Generator:
        """Deterministic per-workload, per-size random source."""
        seed = zlib.crc32(f"{self.name}/{self.size.value}".encode())
        return np.random.default_rng(seed)

    def run(self, observer: Optional[TraceObserver] = None) -> TracedRuntime:
        """Execute the workload under ``observer`` and return the runtime."""
        rt = TracedRuntime(observer)
        with rt.run("main"):
            self.main(rt)
        return rt

    @abc.abstractmethod
    def main(self, rt: TracedRuntime) -> None:
        """The program body (already inside the traced ``main``)."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(size={self.size.value!r})"
