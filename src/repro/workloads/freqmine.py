"""Miniature *freqmine*: FP-growth frequent-itemset mining.

Integer- and pointer-heavy: transactions are inserted into an FP-tree
(scattered node writes), then conditional pattern bases are mined
recursively (scattered node reads).  Data re-use is high -- tree nodes near
the root are touched by almost every transaction -- which places freqmine
among the heavier re-users in Figures 8 and 12.
"""

from __future__ import annotations

import numpy as np

from repro.runtime.decorators import traced
from repro.runtime.memory import Buffer
from repro.runtime.runtime import TracedRuntime
from repro.workloads.base import InputSize, Workload
from repro.workloads.lib import LibEnv, op_new, std_vector_ctor

__all__ = ["Freqmine"]

_NODE = 4  # item, count, parent, next-sibling


@traced("scan1_DB")
def scan1_db(rt: TracedRuntime, transactions: Buffer, counts: Buffer, n: int, width: int) -> None:
    """First database scan: global item frequencies."""
    items = transactions.read_block(0, n * width)
    rt.iops(2 * n * width)
    freq = np.bincount(items % counts.length, minlength=counts.length)
    counts.write_block(freq[: counts.length].astype(counts.dtype), 0)


@traced("build_header_table")
def build_header_table(rt: TracedRuntime, counts: Buffer, header: Buffer) -> None:
    """Order items by frequency: the FP-growth header table."""
    freq = counts.read_block(0, counts.length)
    rt.iops(4 * counts.length)  # counting sort over item frequencies
    order = np.argsort(-freq, kind="stable").astype(np.int64)
    header.write_block(order[: header.length], 0)


@traced("insert_transaction")
def insert_transaction(
    rt: TracedRuntime, tree: Buffer, transactions: Buffer, t: int, width: int, n_nodes: int
) -> None:
    """Thread one transaction down the FP-tree, bumping node counts."""
    items = transactions.read_block(t * width, width)
    node = 0
    for item in items.tolist():
        slot = (node * 31 + int(item)) % (n_nodes - 1)
        rec = tree.read_block(slot * _NODE, _NODE)
        rt.iops(9)
        tree.write_block([int(item), int(rec[1]) + 1, node, int(rec[3])], slot * _NODE)
        node = slot


@traced("FP_growth")
def fp_growth(
    rt: TracedRuntime, tree: Buffer, patterns: Buffer, item: int, n_nodes: int, depth: int
) -> int:
    """Mine conditional pattern bases for one item (recursive)."""
    found = 0
    slot = item % (n_nodes - 1)
    for hop in range(6):
        rec = tree.read_block(slot * _NODE, _NODE)
        rt.iops(11)
        rt.branch("growth.hop", hop + 1 < 6)
        if int(rec[1]) > 1:
            patterns.write(found % patterns.length, int(rec[0]))
            found += 1
        slot = (slot * 17 + 7) % (n_nodes - 1)
    if depth > 0 and found:
        rt.iops(14)
        found += fp_growth(rt, tree, patterns, item * 3 + 1, n_nodes, depth - 1)
    return found


class Freqmine(Workload):
    """FP-growth frequent-itemset mining over a prefix tree."""
    name = "freqmine"
    description = "FP-growth mining over a pointer-linked prefix tree"

    PARAMS = {
        InputSize.SIMSMALL: {"n_trans": 160, "width": 8, "n_nodes": 512, "n_items": 64},
        InputSize.SIMMEDIUM: {"n_trans": 320, "width": 8, "n_nodes": 1024, "n_items": 64},
        InputSize.SIMLARGE: {"n_trans": 640, "width": 10, "n_nodes": 2048, "n_items": 96},
    }

    def main(self, rt: TracedRuntime) -> None:
        p = self.params
        rng = self.rng()
        env = LibEnv.create(rt.arena)

        transactions = rt.arena.alloc_i64("fm.transactions", p["n_trans"] * p["width"])
        counts = rt.arena.alloc_i64("fm.counts", p["n_items"])
        tree = rt.arena.alloc_i64("fm.tree", p["n_nodes"] * _NODE)
        header = rt.arena.alloc_i64("fm.header", p["n_items"])
        patterns = rt.arena.alloc_i64("fm.patterns", 256)

        # Zipf-ish item distribution: low item ids are very frequent.
        raw = (rng.pareto(1.5, transactions.length) * 4).astype(np.int64)
        transactions.poke_block(np.minimum(raw, p["n_items"] - 1))
        rt.syscall("read", output_bytes=transactions.nbytes)
        op_new(rt, env, tree.nbytes)
        std_vector_ctor(rt, env, patterns, patterns.length)

        scan1_db(rt, transactions, counts, p["n_trans"], p["width"])
        build_header_table(rt, counts, header)
        header.read_block(0, min(8, header.length))  # driver orders the scan
        for t in range(p["n_trans"]):
            rt.iops(7)
            rt.branch("build.trans", t + 1 < p["n_trans"])
            insert_transaction(rt, tree, transactions, t, p["width"], p["n_nodes"])

        total = 0
        for item in range(0, p["n_items"], 2):
            rt.iops(10)
            rt.branch("mine.item", item + 2 < p["n_items"])
            total += fp_growth(rt, tree, patterns, item, p["n_nodes"], depth=2)

        self.checksum = float(total)
        rt.syscall("write", input_bytes=patterns.nbytes)
