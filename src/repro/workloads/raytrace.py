"""Miniature *raytrace*: real-time ray tracing over a BVH scene.

Like facesim, raytrace is a memory-intensive benchmark (Figure 6): the scene
(BVH nodes + triangles) is large, and every ray re-reads it -- which also
makes raytrace a heavy line re-user in the line-granularity study
(Figure 12).  Kernels follow the Intel MLRT structure the PARSEC port uses:
per-tile rendering, recursive ray traversal, triangle intersection, and
shading.
"""

from __future__ import annotations

import numpy as np

from repro.runtime.decorators import traced
from repro.runtime.memory import Buffer
from repro.runtime.runtime import TracedRuntime
from repro.workloads.base import InputSize, Workload
from repro.workloads.lib import LibEnv, call_sqrt, op_new

__all__ = ["Raytrace"]


@traced("BuildBVH")
def build_bvh(rt: TracedRuntime, triangles: Buffer, bvh: Buffer, n_tris: int) -> None:
    """Construct the acceleration structure from the triangle soup.

    Median-split style: bin triangle centroids, write interior-node bounds.
    Makes the BVH a *program-produced* structure, so every traversal read is
    a real producer-consumer edge from the builder.
    """
    for start in range(0, n_tris * 9, 1024):
        count = min(1024, n_tris * 9 - start)
        verts = triangles.read_block(start, count)
        rt.flops(3 * count)
        node_base = (start // 9) * 2
        node_count = min(count // 9 * 2, bvh.length - node_base)
        if node_count > 0:
            centroids = verts[: node_count * 4 : 4]
            bounds = np.abs(centroids[:node_count]) + 1.0
            bvh.write_block(bounds, node_base)
        rt.branch("bvh.bin", start + 1024 < n_tris * 9)
    rt.iops(6 * (n_tris // 8))  # split-plane selection


@traced("Intersect")
def intersect(
    rt: TracedRuntime,
    triangles: Buffer,
    hit_records: Buffer,
    scratch: int,
    tri: int,
    origin: float,
    direction: float,
) -> None:
    """Ray/triangle test: nine scene floats, Moller-Trumbore arithmetic.

    The candidate t-value is written to the traversal scratch slot, where
    the BVH walk compares it against the current nearest hit.
    """
    verts = triangles.read_block(tri * 9, 9)
    rt.flops(27)
    det = float(verts[:3].sum()) * direction - origin
    hit_records.write(scratch, abs(det) % 100.0)


@traced("TraceRay")
def trace_ray(
    rt: TracedRuntime,
    bvh: Buffer,
    triangles: Buffer,
    hit_records: Buffer,
    ray: int,
    depth: int,
    fanout: int,
    n_tris: int,
) -> None:
    """Walk the BVH re-reading interior nodes; recurse for reflections.

    The nearest hit lands in the ray's hit record in memory (as MLRT's hit
    structures do), so consumers of the result are visible to Sigil.
    """
    nearest = np.inf
    node = ray % max(1, bvh.length - 4)
    scratch = hit_records.length - 1
    for level in range(fanout):
        bvh.read_block((node + level * 7) % max(1, bvh.length - 4), 4)
        rt.flops(12)
        rt.branch("trace.descend", level + 1 < fanout)
        tri = (ray * 31 + level * 7) % n_tris
        intersect(
            rt, triangles, hit_records, scratch, tri, float(ray % 17), 1.0 + level
        )
        nearest = min(nearest, float(hit_records.read(scratch)))
    if depth > 0:
        rt.flops(8)
        child = ray * 3 + 1
        trace_ray(rt, bvh, triangles, hit_records, child, depth - 1, fanout, n_tris)
        nearest = min(nearest, float(hit_records.read(child % hit_records.length)))
    hit_records.write(ray % hit_records.length, nearest)


@traced("Shade")
def shade(
    rt: TracedRuntime,
    env: LibEnv,
    hit_records: Buffer,
    ray: int,
    lights: Buffer,
    framebuf: Buffer,
) -> None:
    hit = float(hit_records.read(ray % hit_records.length))
    lamps = lights.read_block(0, lights.length)
    rt.flops(5 * lights.length)
    intensity = float((lamps / (1.0 + hit)).sum())
    framebuf.write(ray % framebuf.length, call_sqrt(rt, env, abs(intensity)))


@traced("RenderTile")
def render_tile(
    rt: TracedRuntime,
    env: LibEnv,
    scene: dict,
    framebuf: Buffer,
    tile: int,
    rays_per_tile: int,
    depth: int,
    fanout: int,
    n_tris: int,
) -> None:
    for r in range(rays_per_tile):
        rt.iops(16)  # ray setup, tile cursor, packet bookkeeping
        rt.branch("tile.ray", r + 1 < rays_per_tile)
        ray = tile * rays_per_tile + r
        trace_ray(
            rt, scene["bvh"], scene["triangles"], scene["hit_records"],
            ray, depth, fanout, n_tris,
        )
        shade(rt, env, scene["hit_records"], ray, scene["lights"], framebuf)


@traced("RenderFrame")
def render_frame(
    rt: TracedRuntime,
    env: LibEnv,
    scene: dict,
    framebuf: Buffer,
    n_tiles: int,
    rays_per_tile: int,
    depth: int,
    fanout: int,
    n_tris: int,
) -> None:
    for tile in range(n_tiles):
        rt.iops(30)  # tile scheduling, load-balancing queues
        rt.branch("frame.tile", tile + 1 < n_tiles)
        render_tile(
            rt, env, scene, framebuf, tile, rays_per_tile, depth, fanout, n_tris
        )
        # Adaptive sampling / progressive display: the driver inspects a
        # finished pixel per tile, partially serialising the frame (this is
        # what bounds the Figure 13 parallelism limit).
        framebuf.read((tile * rays_per_tile) % framebuf.length)
        rt.iops(20)


class Raytrace(Workload):
    """BVH ray tracing with heavy scene re-reads (PARSEC miniature)."""
    name = "raytrace"
    description = "BVH ray tracing with heavy scene re-reads"

    PARAMS = {
        InputSize.SIMSMALL: {
            "n_tris": 512, "n_tiles": 12, "rays_per_tile": 12, "depth": 2, "fanout": 5,
        },
        InputSize.SIMMEDIUM: {
            "n_tris": 1024, "n_tiles": 16, "rays_per_tile": 14, "depth": 2, "fanout": 5,
        },
        InputSize.SIMLARGE: {
            "n_tris": 2048, "n_tiles": 20, "rays_per_tile": 16, "depth": 3, "fanout": 6,
        },
    }

    def main(self, rt: TracedRuntime) -> None:
        p = self.params
        rng = self.rng()
        env = LibEnv.create(rt.arena)

        scene = {
            "triangles": rt.arena.alloc_f64("rt.triangles", p["n_tris"] * 9),
            "bvh": rt.arena.alloc_f64("rt.bvh", p["n_tris"] * 2),
            "lights": rt.arena.alloc_f64("rt.lights", 8),
            "hit_records": rt.arena.alloc_f64("rt.hit_records", 1024),
        }
        framebuf = rt.arena.alloc_f64("rt.framebuffer", p["n_tiles"] * p["rays_per_tile"])
        scene["triangles"].poke_block(rng.uniform(-10.0, 10.0, scene["triangles"].length))
        scene["lights"].poke_block(rng.uniform(0.5, 2.0, 8))
        rt.syscall("read", output_bytes=scene["triangles"].nbytes)
        op_new(rt, env, framebuf.nbytes + scene["bvh"].nbytes)
        build_bvh(rt, scene["triangles"], scene["bvh"], p["n_tris"])

        render_frame(
            rt, env, scene, framebuf,
            p["n_tiles"], p["rays_per_tile"], p["depth"], p["fanout"], p["n_tris"],
        )

        out = framebuf.read_block(0, framebuf.length)
        rt.flops(framebuf.length // 8)
        self.checksum = float(out.sum())
        rt.syscall("write", input_bytes=framebuf.nbytes)
