"""Synthetic PARSEC-like workload suite (plus SPEC libquantum)."""

from repro.workloads.base import InputSize, Workload
from repro.workloads.registry import ALL_NAMES, PARSEC_NAMES, WORKLOADS, get_workload

__all__ = [
    "InputSize",
    "Workload",
    "ALL_NAMES",
    "PARSEC_NAMES",
    "WORKLOADS",
    "get_workload",
]
