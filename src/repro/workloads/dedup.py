"""Miniature *dedup*: deduplicated, compressed archival pipeline.

PARSEC's dedup fragments a stream into chunks, fingerprints them with SHA-1,
deduplicates via a hash table, and compresses unique chunks with zlib.  The
paper's Table II lists ``sha1_block_data_order`` twice (two calling
contexts), ``_tr_flush_block``, ``write_file`` and ``adler32`` among the top
candidates; ``hashtable_search`` appears among the worst (pointer-chasing,
little compute).  dedup is also the one benchmark that needed Sigil's
memory-limit option: the pipeline keeps allocating fresh chunk buffers, so
its touched address range (and thus shadow footprint) grows with the input
(section III-A).

The miniature preserves all of that: per-chunk output buffers come from
fresh arena allocations, SHA-1 runs from both ``FragmentRefine`` and
``Deduplicate`` contexts, and ``write_file`` copies into the archive buffer
while ``main`` performs the actual I/O syscalls.
"""

from __future__ import annotations

import numpy as np

from repro.runtime.decorators import traced
from repro.runtime.memory import Buffer
from repro.runtime.runtime import TracedRuntime
from repro.workloads.base import InputSize, Workload
from repro.workloads.lib import LibEnv, memcpy, op_new

__all__ = ["Dedup"]


@traced("sha1_block_data_order")
def sha1_block(rt: TracedRuntime, data: Buffer, start: int, count: int, digest: Buffer) -> None:
    """SHA-1 compression over 64-byte blocks: compute-dense (80 rounds)."""
    acc = np.zeros(4, dtype=np.int64)
    for off in range(start, start + count, 64):
        block = data.read_block(off, min(64, start + count - off))
        rt.iops(80 * 4)
        acc = (acc * 31 + int(block.sum())) & 0x7FFFFFFF
    digest.write_block(acc, 0)


@traced("adler32")
def adler32(rt: TracedRuntime, data: Buffer, start: int, count: int) -> int:
    """Rolling checksum "optimized for speed over accuracy"."""
    block = data.read_block(start, count)
    rt.iops(2 * count)
    a = int(block.sum()) % 65521
    b = int(np.arange(count, 0, -1).dot(block)) % 65521
    return (b << 16) | a


@traced("hashtable_search")
def hashtable_search(
    rt: TracedRuntime, table: Buffer, digest: Buffer, probes: int
) -> int:
    """Open-addressing probe walk: much memory, little compute (Table III)."""
    key = int(digest.read(0))
    slot = key % (table.length - probes)
    for i in range(probes):
        entry = int(table.read(slot + i))
        rt.iops(4)
        if entry == 0 or entry == key:
            table.write(slot + i, key)
            return int(entry == key)
    return 0


@traced("_tr_flush_block")
def tr_flush_block(
    rt: TracedRuntime, chunk: Buffer, start: int, count: int, out: Buffer
) -> int:
    """zlib block flush: Huffman code emit over the chunk."""
    data = chunk.read_block(start, count)
    rt.iops(6 * count)
    packed = (data.astype(np.int64) * 131) % 251
    n_out = max(8, count * 5 // 8)
    out.write_block(packed[:n_out].astype(out.dtype), 0)
    return n_out


@traced("Compress")
def compress(
    rt: TracedRuntime, env: LibEnv, chunk: Buffer, start: int, count: int, out: Buffer
) -> int:
    rt.iops(12)
    n_out = tr_flush_block(rt, chunk, start, count, out)
    adler32(rt, out, 0, min(n_out, out.length))
    return n_out


@traced("write_file")
def write_file(
    rt: TracedRuntime, env: LibEnv, src: Buffer, count: int, archive: Buffer, stream_state: Buffer
) -> int:
    """Append a compressed chunk to the archive image (main does the I/O).

    The archive cursor lives in memory: successive calls read and advance
    it, serialising the output stage as a real container writer would.
    """
    pos = int(stream_state.read(0))
    count = min(count, archive.length - pos)
    memcpy(rt, archive, pos, src, 0, count)
    rt.iops(10)
    stream_state.write(0, pos + count)
    return pos + count


@traced("Deduplicate")
def deduplicate(
    rt: TracedRuntime,
    env: LibEnv,
    stream: Buffer,
    start: int,
    count: int,
    digest: Buffer,
    table: Buffer,
) -> bool:
    """Hash-table lookup; on collision re-verify the fingerprint."""
    rt.iops(8)
    duplicate = hashtable_search(rt, table, digest, probes=4)
    if duplicate:
        # Verify against hash collisions: second sha1 context (Table II).
        sha1_block(rt, stream, start, min(64, count), digest)
    return bool(duplicate)


@traced("FragmentRefine")
def fragment_refine(
    rt: TracedRuntime,
    env: LibEnv,
    stream: Buffer,
    start: int,
    count: int,
    digest: Buffer,
) -> None:
    """Rabin-style boundary scan + first-context SHA-1 fingerprint.

    The rolling-hash window slides in overlapping steps, so every stream
    byte is read twice by the scan (visible as 1-9 re-use in Figure 8).
    """
    window_size = 32
    for off in range(start, start + count - window_size + 1, window_size // 2):
        stream.read_block(off, window_size)
        rt.iops(window_size)
        rt.branch("rabin.slide", off + window_size < start + count)
    sha1_block(rt, stream, start, count, digest)


class Dedup(Workload):
    """Chunking + SHA-1 dedup + compression pipeline (PARSEC miniature)."""
    name = "dedup"
    description = "chunking + SHA-1 dedup + zlib-style compression pipeline"

    PARAMS = {
        InputSize.SIMSMALL: {"n_chunks": 48, "chunk_size": 512, "table_slots": 1024},
        InputSize.SIMMEDIUM: {"n_chunks": 96, "chunk_size": 512, "table_slots": 2048},
        InputSize.SIMLARGE: {"n_chunks": 192, "chunk_size": 512, "table_slots": 4096},
    }

    def main(self, rt: TracedRuntime) -> None:
        p = self.params
        n_chunks, chunk_size = p["n_chunks"], p["chunk_size"]
        rng = self.rng()
        env = LibEnv.create(rt.arena)

        stream = rt.arena.alloc_u8("dedup.stream", n_chunks * chunk_size)
        digest = rt.arena.alloc_i64("dedup.digest", 4)
        table = rt.arena.alloc_i64("dedup.table", p["table_slots"])
        archive = rt.arena.alloc_u8("dedup.archive", n_chunks * chunk_size)
        stream_state = rt.arena.alloc_i64("dedup.stream_state", 2)

        # ~25% duplicate chunks: repeat a base pattern.
        base = rng.integers(0, 256, chunk_size)
        data = rng.integers(0, 256, stream.length)
        for i in range(0, n_chunks, 4):
            data[i * chunk_size : (i + 1) * chunk_size] = base
        stream.poke_block(data)
        rt.syscall("read", output_bytes=stream.nbytes)
        op_new(rt, env, archive.length)

        pos = 0
        written = 0
        for i in range(n_chunks):
            # Pipeline queue management, refcounting, anchoring bookkeeping
            # in the Encode driver.
            rt.iops(250)
            rt.branch("encode.chunk", i + 1 < n_chunks)
            start = i * chunk_size
            fragment_refine(rt, env, stream, start, chunk_size, digest)
            if not deduplicate(rt, env, stream, start, chunk_size, digest, table):
                # Fresh output buffer per unique chunk: the growing address
                # footprint that motivates the shadow-memory FIFO limit.
                out = rt.arena.alloc_u8(f"dedup.out{i}", chunk_size)
                n_out = compress(rt, env, stream, start, chunk_size, out)
                pos = write_file(rt, env, out, n_out, archive, stream_state)
                written += 1

        rt.iops(8)
        self.checksum = float(pos + written)
        rt.syscall("write", input_bytes=pos)
