"""Shared traced "library" kernels: libc, libm and C++ runtime miniatures.

The paper's breakeven tables are full of library symbols: the top candidates
include ``__ieee754_exp``/``__ieee754_log`` ("usually very fast code
implementations with existing hardware support") and ``__mpn_mul``
("multiplication calls to the math library"); the worst candidates "are
mostly utility functions such as constructors (e.g. std::vector),
destructors (e.g. free) and initializers (e.g. std::string::assign)" that
"exhibit less computational intensity" (Tables II/III).  Workloads call
these miniatures so the same inventory appears in our trimmed call trees.

Calling convention: arguments and results that cross function boundaries do
so through memory (a small ``frame`` buffer), the way a real ABI spills to
the stack.  The *caller* writes arguments before the call and reads results
after it; the *callee* reads arguments and writes results.  Sigil therefore
sees real producer-consumer edges for every call.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.runtime.decorators import traced
from repro.runtime.memory import Arena, Buffer
from repro.runtime.runtime import TracedRuntime

__all__ = [
    "LibEnv",
    "call_exp",
    "call_log",
    "call_expf",
    "call_logf",
    "call_sqrt",
    "call_mpn_mul",
    "call_mpn_lshift",
    "call_mpn_rshift",
    "call_isnan",
    "memcpy",
    "memmove",
    "memset",
    "memchr",
    "op_new",
    "op_free",
    "std_vector_ctor",
    "std_basic_string_ctor",
    "string_assign",
    "string_compare",
    "locale_ctor",
    "io_file_xsgetn",
    "io_sputbackc",
    "dl_addr",
]


@dataclass
class LibEnv:
    """Shared library state: rodata tables, a call frame, allocator metadata.

    ``table`` stands for libm's polynomial-coefficient rodata; ``limbs`` for
    libgmp limb scratch; ``heap_meta`` for the allocator's bookkeeping that
    ``operator new``/``free`` touch.
    """

    frame: Buffer
    table: Buffer
    limbs: Buffer
    heap_meta: Buffer

    @classmethod
    def create(cls, arena: Arena) -> "LibEnv":
        frame = arena.alloc_f64("lib.frame", 16)
        table = arena.alloc_f64("lib.rodata", 32)
        limbs = arena.alloc_i64("lib.limbs", 32)
        heap_meta = arena.alloc_i64("lib.heap_meta", 64)
        # rodata is baked into the binary: stage it untraced (program input).
        table.poke_block([1.0 / math.factorial(k) for k in range(32)])
        return cls(frame=frame, table=table, limbs=limbs, heap_meta=heap_meta)


# ---------------------------------------------------------------------------
# libm: compute-dense leaf functions (Table II's best candidates)
# ---------------------------------------------------------------------------


def _libm_unary(symbol: str, flops: int, func):
    """Build a traced libm-style unary function and its caller shim."""

    @traced(symbol)
    def body(rt: TracedRuntime, env: LibEnv) -> None:
        x = float(env.frame.read(0))
        env.table.read_block(0, 8)  # polynomial coefficients
        rt.flops(flops)
        env.frame.write(1, func(x))

    def caller(rt: TracedRuntime, env: LibEnv, x: float) -> float:
        env.frame.write(0, x)
        body(rt, env)
        return float(env.frame.read(1))

    caller.__name__ = f"call_{symbol.strip('_')}"
    caller.__doc__ = (
        f"Invoke the ``{symbol}`` miniature: the caller passes ``x`` and "
        "receives the result through the shared call frame (stack-ABI "
        "modeling), so the call shows up as real communication."
    )
    return caller


def _safe_exp(x: float) -> float:
    return math.exp(min(max(x, -700.0), 700.0))


def _safe_log(x: float) -> float:
    return math.log(x) if x > 0 else -math.inf


# Op counts reflect software libm: range reduction, a 12-14 term polynomial
# evaluation, reconstruction, and special-case handling.
call_exp = _libm_unary("__ieee754_exp", 120, _safe_exp)
call_log = _libm_unary("__ieee754_log", 110, _safe_log)
call_expf = _libm_unary("__ieee754_expf", 80, _safe_exp)
call_logf = _libm_unary("__ieee754_logf", 75, _safe_log)
call_sqrt = _libm_unary("__ieee754_sqrt", 60, lambda x: math.sqrt(max(x, 0.0)))


@traced("__mpn_mul")
def _mpn_mul(rt: TracedRuntime, env: LibEnv, n_limbs: int) -> None:
    """Multi-precision multiply over limb arrays (int-dense)."""
    a = env.limbs.read_block(0, n_limbs)
    b = env.limbs.read_block(n_limbs, n_limbs)
    rt.iops(6 * n_limbs * n_limbs)
    product = int(a.sum()) * int(b.sum())  # miniature: magnitude only
    env.limbs.write(2 * n_limbs, np.int64(product & 0x7FFF_FFFF_FFFF_FFFF))


def call_mpn_mul(rt: TracedRuntime, env: LibEnv, a: int, b: int, n_limbs: int = 4) -> int:
    """Stage limb arrays for ``a`` and ``b`` and run ``__mpn_mul``."""
    env.limbs.write_block(
        np.full(n_limbs, a & 0xFFFF, dtype=np.int64), 0
    )
    env.limbs.write_block(
        np.full(n_limbs, b & 0xFFFF, dtype=np.int64), n_limbs
    )
    _mpn_mul(rt, env, n_limbs)
    return int(env.limbs.read(2 * n_limbs))


def _mpn_shift(symbol: str):
    @traced(symbol)
    def body(rt: TracedRuntime, env: LibEnv, n_limbs: int, amount: int) -> None:
        limbs = env.limbs.read_block(0, n_limbs)
        rt.iops(2 * n_limbs)
        shifted = limbs << amount if "lshift" in symbol else limbs >> amount
        env.limbs.write_block(shifted, 0)

    return body


_mpn_lshift = _mpn_shift("__mpn_lshift")
_mpn_rshift = _mpn_shift("__mpn_rshift")


def call_mpn_lshift(rt: TracedRuntime, env: LibEnv, n_limbs: int = 8, amount: int = 1) -> None:
    """Shift the staged limb array left by ``amount`` bits."""
    _mpn_lshift(rt, env, n_limbs, amount)


def call_mpn_rshift(rt: TracedRuntime, env: LibEnv, n_limbs: int = 8, amount: int = 1) -> None:
    """Shift the staged limb array right by ``amount`` bits."""
    _mpn_rshift(rt, env, n_limbs, amount)


@traced("isnan")
def _isnan(rt: TracedRuntime, env: LibEnv) -> None:
    x = float(env.frame.read(0))
    rt.iops(2)
    env.frame.write(1, 1.0 if math.isnan(x) else 0.0)


def call_isnan(rt: TracedRuntime, env: LibEnv, x: float) -> bool:
    """NaN check through the shared call frame."""
    env.frame.write(0, x)
    _isnan(rt, env)
    return bool(env.frame.read(1))


# ---------------------------------------------------------------------------
# string/memory utilities: communication-heavy, compute-light (Table III)
# ---------------------------------------------------------------------------


@traced("memcpy")
def memcpy(
    rt: TracedRuntime,
    dst: Buffer,
    dst_start: int,
    src: Buffer,
    src_start: int,
    count: int,
) -> None:
    """Copy ``count`` elements; one op per word moved, 2x traffic."""
    data = src.read_block(src_start, count)
    rt.iops(max(1, count // 4))
    dst.write_block(data, dst_start)


@traced("memmove")
def memmove(
    rt: TracedRuntime,
    dst: Buffer,
    dst_start: int,
    src: Buffer,
    src_start: int,
    count: int,
) -> None:
    """Overlap-safe copy (direction checks on top of the plain copy)."""
    data = src.read_block(src_start, count)
    rt.iops(max(1, count // 4) + 4)
    dst.write_block(data, dst_start)


@traced("memset")
def memset(rt: TracedRuntime, dst: Buffer, start: int, count: int, value) -> None:
    """Fill ``count`` elements with ``value``."""
    rt.iops(max(1, count // 8))
    dst.write_block(np.full(count, value, dtype=dst.dtype), start)


@traced("memchr")
def memchr(rt: TracedRuntime, buf: Buffer, start: int, count: int, needle) -> int:
    """Scan for ``needle``; returns index or -1."""
    data = buf.read_block(start, count)
    rt.iops(max(1, count))
    hits = np.flatnonzero(data == needle)
    return int(start + hits[0]) if len(hits) else -1


@traced("operator new")
def op_new(rt: TracedRuntime, env: LibEnv, size: int) -> int:
    """Bump allocation with metadata touches; returns a token."""
    cursor = int(env.heap_meta.read(0))
    env.heap_meta.read_block(1, 3)  # freelist heads
    rt.iops(12)
    env.heap_meta.write(0, cursor + max(size, 1))
    return cursor


@traced("free")
def op_free(rt: TracedRuntime, env: LibEnv, token: int) -> None:
    """Release an allocation: freelist metadata touches (Table III)."""
    env.heap_meta.read_block(0, 4)
    rt.iops(8)
    env.heap_meta.write(1, token)


@traced("std::vector")
def std_vector_ctor(rt: TracedRuntime, env: LibEnv, storage: Buffer, count: int) -> None:
    """Vector construction: allocate + zero-fill."""
    op_new(rt, env, count * storage.itemsize)
    rt.iops(6)
    storage.write_block(np.zeros(count, dtype=storage.dtype), 0)


@traced("std::basic_string")
def std_basic_string_ctor(rt: TracedRuntime, env: LibEnv, storage: Buffer, count: int) -> None:
    """String construction: allocate + zero-fill (Table III)."""
    op_new(rt, env, count)
    rt.iops(5)
    storage.write_block(np.zeros(count, dtype=storage.dtype), 0)


@traced("std::string::assign")
def string_assign(
    rt: TracedRuntime,
    env: LibEnv,
    dst: Buffer,
    src: Buffer,
    src_start: int,
    count: int,
) -> None:
    """``std::string::assign``: allocate then copy the source bytes."""
    op_new(rt, env, count)
    data = src.read_block(src_start, count)
    rt.iops(max(1, count // 8) + 4)
    dst.write_block(data, 0)


@traced("std::string::compare")
def string_compare(
    rt: TracedRuntime, a: Buffer, a_start: int, b: Buffer, b_start: int, count: int
) -> int:
    """``std::string::compare``: lexicographic comparison of two ranges."""
    lhs = a.read_block(a_start, count)
    rhs = b.read_block(b_start, count)
    rt.iops(max(1, count))
    if (lhs == rhs).all():
        return 0
    diff = np.flatnonzero(lhs != rhs)[0]
    return int(lhs[diff]) - int(rhs[diff])


@traced("std::locale::locale")
def locale_ctor(rt: TracedRuntime, env: LibEnv, storage: Buffer) -> None:
    """Locale construction: facet table initialisation (canneal Table III)."""
    op_new(rt, env, storage.length)
    rt.iops(10)
    storage.write_block(np.arange(storage.length, dtype=storage.dtype), 0)


@traced("_IO_file_xsgetn")
def io_file_xsgetn(
    rt: TracedRuntime,
    dst: Buffer,
    dst_start: int,
    filebuf: Buffer,
    file_pos: int,
    count: int,
) -> None:
    """Buffered file read: drain the stdio buffer into the caller's memory."""
    data = filebuf.read_block(file_pos, count)
    rt.iops(max(1, count // 16) + 6)
    dst.write_block(data, dst_start)


@traced("_IO_sputbackc")
def io_sputbackc(rt: TracedRuntime, filebuf: Buffer, pos: int) -> None:
    """Push one character back into the stdio buffer."""
    ch = filebuf.read(pos)
    rt.iops(4)
    filebuf.write(pos, ch)


@traced("dl_addr")
def dl_addr(rt: TracedRuntime, env: LibEnv) -> None:
    """Symbol lookup walking loader metadata (blackscholes Table III)."""
    env.heap_meta.read_block(8, 16)
    rt.iops(10)
    env.heap_meta.write(7, 1)
