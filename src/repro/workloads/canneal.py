"""Miniature *canneal*: simulated-annealing routing-cost minimisation.

canneal is one of the paper's low-coverage applications (Figure 7): "Canneal,
Ferret and Swaptions ... candidate functions show low 'coverage' of the
overall application in terms of execution time.  Functions with low coverage
indicate fewer 'hot code' regions."  The annealing loop lives in the
top-level driver (``main`` in the serial version), whose own bookkeeping,
cost evaluation and acceptance logic dominate -- the callable kernels below
it are small utilities.  Table II for canneal lists ``mul``, ``memchr``,
``netlist::swap_locations``, ``memmove`` and ``std::string::compare``; Table
III adds ``__mpn_rshift``/``lshift``, ``std::locale::locale``,
``std::basic_string`` and ``operator new``.
"""

from __future__ import annotations

import numpy as np

from repro.runtime.decorators import traced
from repro.runtime.memory import Buffer
from repro.runtime.runtime import TracedRuntime
from repro.workloads.base import InputSize, Workload
from repro.workloads.lib import (
    LibEnv,
    call_isnan,
    call_mpn_lshift,
    call_mpn_rshift,
    io_file_xsgetn,
    locale_ctor,
    memchr,
    memmove,
    op_new,
    std_basic_string_ctor,
    string_assign,
    string_compare,
)

__all__ = ["Canneal"]


@traced("netlist::swap_locations")
def swap_locations(rt: TracedRuntime, locs: Buffer, a: int, b: int) -> None:
    """Swap two element placements: pure data movement."""
    xa = locs.read_block(2 * a, 2)
    xb = locs.read_block(2 * b, 2)
    rt.iops(6)
    locs.write_block(xb, 2 * a)
    locs.write_block(xa, 2 * b)


@traced("mul")
def _mul_body(rt: TracedRuntime, env: LibEnv) -> None:
    """Fixed-point multiply helper: compute-dense leaf (Table II's best)."""
    x = float(env.frame.read(4))
    y = float(env.frame.read(5))
    rt.iops(90)  # 64-bit fixed-point decomposition: shifts, partials, carry
    result = (x * y) * 0.5 + (x + y) * 0.25
    env.frame.write(6, result)


def fixed_mul(rt: TracedRuntime, env: LibEnv, a: float, b: float) -> float:
    """Caller shim: arguments and result cross the boundary via memory."""
    env.frame.write(4, a)
    env.frame.write(5, b)
    _mul_body(rt, env)
    return float(env.frame.read(6))


@traced("netlist::create_elem")
def create_elem(
    rt: TracedRuntime, env: LibEnv, names: Buffer, scratch: Buffer, index: int
) -> None:
    """Element construction during parsing: allocator + string traffic."""
    op_new(rt, env, 32)
    string_assign(rt, env, scratch, names, (index * 8) % max(8, names.length - 8), 8)


@traced("read_netlist")
def read_netlist(
    rt: TracedRuntime,
    env: LibEnv,
    filebuf: Buffer,
    names: Buffer,
    locs: Buffer,
    scratch: Buffer,
    n_elements: int,
) -> None:
    """Parse the netlist: stdio reads, string churn, element construction."""
    locale_ctor(rt, env, scratch)
    scratch.read_block(0, scratch.length)  # facets consumed by the parser
    rt.iops(8)
    std_basic_string_ctor(rt, env, scratch, min(16, scratch.length))
    step = max(1, n_elements // 8)
    for i in range(0, n_elements, step):
        rt.iops(12)
        rt.branch("parse.batch", i + step < n_elements)
        io_file_xsgetn(rt, names, 0, filebuf, (i * 8) % max(8, filebuf.length - 64), 64)
        create_elem(rt, env, names, scratch, i)
    coords = np.arange(2 * n_elements, dtype=np.float64)
    rt.iops(2 * n_elements)
    locs.write_block(coords, 0)


class Canneal(Workload):
    """Simulated-annealing placement with a flat, driver-heavy profile."""
    name = "canneal"
    description = "simulated annealing with a flat, driver-heavy profile"

    PARAMS = {
        InputSize.SIMSMALL: {"n_elements": 256, "n_swaps": 700},
        InputSize.SIMMEDIUM: {"n_elements": 512, "n_swaps": 1400},
        InputSize.SIMLARGE: {"n_elements": 1024, "n_swaps": 2800},
    }

    def main(self, rt: TracedRuntime) -> None:
        p = self.params
        n, n_swaps = p["n_elements"], p["n_swaps"]
        rng = self.rng()
        env = LibEnv.create(rt.arena)

        filebuf = rt.arena.alloc_u8("cn.netlist_file", n * 8)
        names = rt.arena.alloc_u8("cn.names", 256)
        scratch = rt.arena.alloc_u8("cn.scratch", 64)
        locs = rt.arena.alloc_f64("cn.locations", 2 * n)
        filebuf.poke_block(rng.integers(ord("a"), ord("z"), filebuf.length))
        rt.syscall("read", output_bytes=filebuf.nbytes)

        read_netlist(rt, env, filebuf, names, locs, scratch, n)

        # The annealing loop itself: hot, but in the driver (low coverage).
        temperature = 100.0
        accepted = 0
        for step in range(n_swaps):
            rt.branch("anneal.step", step + 1 < n_swaps)
            a = int(rng.integers(0, n))
            b = int(rng.integers(0, n))
            # Inline routing-cost delta: the "fewer hot code regions" self
            # cost that keeps canneal's candidate coverage low.
            rt.iops(52)
            delta = float(rng.normal())
            score = fixed_mul(rt, env, delta, temperature)
            if score < 0 or rng.random() < np.exp(-abs(score) / max(temperature, 1e-9)):
                swap_locations(rt, locs, a, b)
                accepted += 1
            if step % 64 == 0:
                memchr(rt, names, 0, min(64, names.length), int(filebuf.peek(step % filebuf.length)))
                memmove(rt, names, 8, names, 0, 16)
                string_compare(rt, names, 0, names, 8, 8)
                call_mpn_rshift(rt, env)
                call_mpn_lshift(rt, env)
                call_isnan(rt, env, score)  # reject NaN cost deltas
            temperature *= 0.999
            rt.iops(6)

        out = locs.read_block(0, 2 * n)
        rt.flops(n // 4)
        self.checksum = float(out.sum()) + accepted
        rt.syscall("write", input_bytes=locs.nbytes)
