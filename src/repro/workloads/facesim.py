"""Miniature *facesim*: finite-element face-mesh simulation.

facesim is one of the paper's memory-intensive benchmarks: "facesim and
raytrace are intensive benchmarks that use larger amounts of memory but
incur constant overhead over a native run" (Figure 6).  The miniature keeps
large node/state arrays so its shadow footprint dominates the suite, with
the PhysBAM-style kernel inventory: position-based state update, velocity-
independent force accumulation, and a conjugate-gradient Newton step.
"""

from __future__ import annotations

import numpy as np

from repro.runtime.decorators import traced
from repro.runtime.memory import Buffer
from repro.runtime.runtime import TracedRuntime
from repro.workloads.base import InputSize, Workload
from repro.workloads.lib import LibEnv, op_new

__all__ = ["Facesim"]


@traced("Update_Position_Based_State")
def update_position_based_state(
    rt: TracedRuntime, positions: Buffer, strain: Buffer, n: int, block: int
) -> None:
    """Per-element strain from current positions (blocked sweep)."""
    for start in range(0, n, block):
        count = min(block, n - start)
        x = positions.read_block(start, count)
        rt.flops(8 * count)
        strain.write_block(np.gradient(x) if count > 1 else x, start)
        rt.branch("upbs.block", start + block < n)


@traced("Add_Velocity_Independent_Forces")
def add_velocity_independent_forces(
    rt: TracedRuntime, strain: Buffer, forces: Buffer, n: int, block: int
) -> None:
    for start in range(0, n, block):
        count = min(block, n - start)
        e = strain.read_block(start, count)
        rt.flops(11 * count)
        forces.write_block(-2.0 * e - 0.1 * e ** 3, start)
        rt.branch("avif.block", start + block < n)


@traced("CG_Iterate")
def cg_iterate(
    rt: TracedRuntime, matrix: Buffer, vec: Buffer, out: Buffer, n: int, bandwidth: int
) -> float:
    """One banded matrix-vector product + axpy of the CG solve."""
    x = vec.read_block(0, n)
    acc = np.zeros(n)
    for b in range(bandwidth):
        row = matrix.read_block(b * n, n)
        rt.flops(2 * n)
        acc += row * np.roll(x, b)
        rt.branch("cg.band", b + 1 < bandwidth)
    rt.flops(2 * n)
    out.write_block(acc, 0)
    return float(np.abs(acc).sum())


@traced("One_Newton_Step_Toward_Steady_State")
def newton_step(
    rt: TracedRuntime,
    matrix: Buffer,
    forces: Buffer,
    delta: Buffer,
    n: int,
    bandwidth: int,
    cg_iters: int,
) -> float:
    residual = 0.0
    for it in range(cg_iters):
        rt.iops(12)
        rt.branch("newton.iter", it + 1 < cg_iters)
        residual = cg_iterate(rt, matrix, forces, delta, n, bandwidth)
    return residual


@traced("Update_Collision_Body_List")
def update_collision_body_list(
    rt: TracedRuntime, positions: Buffer, colliders: Buffer, n: int
) -> None:
    """Refresh the rigid-collider proximity list from boundary nodes."""
    edge = positions.read_block(0, min(256, n))
    rt.flops(5 * min(256, n))
    colliders.write_block(np.abs(edge[: colliders.length]) < 0.9, 0)


@traced("Advance_One_Time_Step")
def advance_one_time_step(
    rt: TracedRuntime, bufs: dict, n: int, block: int, bandwidth: int, cg_iters: int
) -> float:
    rt.iops(18)
    update_collision_body_list(rt, bufs["positions"], bufs["colliders"], n)
    update_position_based_state(rt, bufs["positions"], bufs["strain"], n, block)
    add_velocity_independent_forces(rt, bufs["strain"], bufs["forces"], n, block)
    residual = newton_step(
        rt, bufs["matrix"], bufs["forces"], bufs["delta"], n, bandwidth, cg_iters
    )
    x = bufs["positions"].read_block(0, n)
    d = bufs["delta"].read_block(0, n)
    rt.flops(2 * n)
    bufs["positions"].write_block(x + 0.01 * d, 0)
    return residual


class Facesim(Workload):
    """FEM face simulation over large state arrays (PARSEC miniature)."""
    name = "facesim"
    description = "FEM face simulation with large state arrays"

    PARAMS = {
        InputSize.SIMSMALL: {
            "n_nodes": 8192, "steps": 3, "block": 1024, "bandwidth": 4, "cg_iters": 3,
        },
        InputSize.SIMMEDIUM: {
            "n_nodes": 16384, "steps": 3, "block": 1024, "bandwidth": 4, "cg_iters": 3,
        },
        InputSize.SIMLARGE: {
            "n_nodes": 32768, "steps": 4, "block": 1024, "bandwidth": 4, "cg_iters": 4,
        },
    }

    def main(self, rt: TracedRuntime) -> None:
        p = self.params
        n = p["n_nodes"]
        rng = self.rng()
        env = LibEnv.create(rt.arena)

        bufs = {
            "positions": rt.arena.alloc_f64("fs.positions", n),
            "strain": rt.arena.alloc_f64("fs.strain", n),
            "forces": rt.arena.alloc_f64("fs.forces", n),
            "delta": rt.arena.alloc_f64("fs.delta", n),
            "matrix": rt.arena.alloc_f64("fs.matrix", p["bandwidth"] * n),
            "colliders": rt.arena.alloc_f64("fs.colliders", 64),
        }
        bufs["positions"].poke_block(rng.uniform(-1.0, 1.0, n))
        bufs["matrix"].poke_block(rng.uniform(-0.1, 0.1, p["bandwidth"] * n))
        rt.syscall("read", output_bytes=bufs["positions"].nbytes + bufs["matrix"].nbytes)
        op_new(rt, env, sum(b.nbytes for b in bufs.values()))

        residual = 0.0
        for step in range(p["steps"]):
            # Driver-side diagnostics, mesh validity checks, frame export
            # staging -- main self-cost outside any candidate subtree.
            rt.iops(25000)
            rt.branch("main.step", step + 1 < p["steps"])
            residual = advance_one_time_step(
                rt, bufs, n, p["block"], p["bandwidth"], p["cg_iters"]
            )

        self.checksum = residual
        rt.syscall("write", input_bytes=bufs["positions"].nbytes)
