"""Traced-Python runtime substrate used by the synthetic workload suite."""

from repro.runtime.decorators import traced
from repro.runtime.memory import Arena, Buffer
from repro.runtime.runtime import RuntimeError_, TracedRuntime, run_interleaved

__all__ = ["traced", "Arena", "Buffer", "RuntimeError_", "TracedRuntime", "run_interleaved"]
