"""Decorator sugar for writing traced workload kernels.

A kernel decorated with :func:`traced` must take the
:class:`~repro.runtime.runtime.TracedRuntime` as its first argument; the
wrapper brackets the body with function enter/exit events under the given
symbol name (defaulting to the Python function's name).

Example
-------
>>> from repro.runtime import TracedRuntime, traced
>>> @traced("conv_gen")
... def conv_gen(rt, image, kernel):
...     rt.flops(10)
...     return 42
>>> rt = TracedRuntime()
>>> with rt.run():
...     result = conv_gen(rt, None, None)
"""

from __future__ import annotations

import functools
from typing import Callable, Optional, TypeVar, overload

from repro.runtime.runtime import TracedRuntime

__all__ = ["traced"]

F = TypeVar("F", bound=Callable)


@overload
def traced(name_or_fn: F) -> F: ...


@overload
def traced(name_or_fn: Optional[str] = None) -> Callable[[F], F]: ...


def traced(name_or_fn=None):
    """Mark a kernel as a traced function.

    Usable bare (``@traced``) or with an explicit symbol name
    (``@traced("ImageMeasurements::ImageErrorInside")``) so synthetic
    workloads can carry the exact function names the paper reports.
    """

    def decorate(fn: Callable, name: Optional[str] = None) -> Callable:
        symbol = name if name is not None else fn.__name__

        @functools.wraps(fn)
        def wrapper(rt, *args, **kwargs):
            if not isinstance(rt, TracedRuntime):
                raise TypeError(
                    f"traced function {symbol!r} must receive a TracedRuntime "
                    f"as its first argument, got {type(rt).__name__}"
                )
            rt.enter(symbol)
            try:
                return fn(rt, *args, **kwargs)
            finally:
                rt.exit(symbol)

        wrapper.symbol_name = symbol  # type: ignore[attr-defined]
        return wrapper

    if callable(name_or_fn):
        return decorate(name_or_fn)
    return lambda fn: decorate(fn, name_or_fn)
