"""The traced-Python runtime: the second execution substrate.

Workload kernels are ordinary Python functions that announce their
function-level structure (:meth:`TracedRuntime.enter` / :meth:`exit` or the
:func:`repro.runtime.decorators.traced` decorator), their computation
(:meth:`iops` / :meth:`flops`), their branches, and their memory traffic
(through :class:`repro.runtime.memory.Buffer`).  The emitted primitive stream
is indistinguishable from the mini-VM's, so every tool works on both.

This substrate exists because writing fourteen PARSEC-like workloads in VM
assembly would be slow and unreadable; the paper itself notes Sigil "can use
any framework that identifies communicating entities, and exposes addresses
and operations to the tool" (section III).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional

from repro.trace.events import OpKind
from repro.trace.observer import NullObserver, TraceObserver
from repro.runtime.memory import Arena

__all__ = ["TracedRuntime", "RuntimeError_"]


class RuntimeError_(Exception):
    """Structural misuse of the traced runtime (unbalanced enter/exit...)."""


class TracedRuntime:
    """Carries the observer, the function stack, and the arena for one run."""

    def __init__(self, observer: Optional[TraceObserver] = None):
        self.observer: TraceObserver = (
            observer if observer is not None else NullObserver()
        )
        self.arena = Arena(self)
        self._branch_sites: Dict[str, int] = {}
        self._running = False
        # Per-virtual-thread function stacks; thread 0 is the default.
        self._tid = 0
        self._thread_stacks: Dict[int, List[str]] = {0: []}
        self._stack: List[str] = self._thread_stacks[0]

    # -- threads -----------------------------------------------------------

    @property
    def current_thread(self) -> int:
        return self._tid

    def switch_thread(self, tid: int) -> None:
        """Move execution to virtual thread ``tid`` (created on first use).

        Each thread has an independent function stack; buffers and the arena
        are shared, so cross-thread reads and writes produce real
        producer-consumer edges in the profile.
        """
        if tid < 0:
            raise RuntimeError_(f"invalid thread id {tid}")
        if tid == self._tid:
            return
        self._tid = tid
        self._stack = self._thread_stacks.setdefault(tid, [])
        self.observer.on_thread_switch(tid)

    # -- run lifecycle ----------------------------------------------------

    @contextmanager
    def run(self, entry: str = "main") -> Iterator["TracedRuntime"]:
        """Context manager bracketing a whole program run."""
        if self._running:
            raise RuntimeError_("runtime already running")
        self._running = True
        self.observer.on_run_begin()
        self.enter(entry)
        try:
            yield self
        finally:
            self.switch_thread(0)
            self.exit(entry)
            self.observer.on_run_end()
            self._running = False

    # -- function structure --------------------------------------------------

    def enter(self, name: str) -> None:
        self._stack.append(name)
        self.observer.on_fn_enter(name)

    def exit(self, name: str) -> None:
        if not self._stack:
            raise RuntimeError_(f"exit({name!r}) with empty function stack")
        top = self._stack.pop()
        if top != name:
            raise RuntimeError_(f"exit({name!r}) but innermost function is {top!r}")
        self.observer.on_fn_exit(name)

    @contextmanager
    def frame(self, name: str) -> Iterator[None]:
        """``with rt.frame("f"):`` — a traced function call."""
        self.enter(name)
        try:
            yield
        finally:
            self.exit(name)

    @property
    def current_function(self) -> Optional[str]:
        return self._stack[-1] if self._stack else None

    @property
    def depth(self) -> int:
        return len(self._stack)

    # -- computation -----------------------------------------------------------

    def iops(self, count: int = 1) -> None:
        """Retire ``count`` integer operations in the current function."""
        if count > 0:
            self.observer.on_op(OpKind.INT, count)

    def flops(self, count: int = 1) -> None:
        """Retire ``count`` floating-point operations in the current function."""
        if count > 0:
            self.observer.on_op(OpKind.FLOAT, count)

    def branch(self, site: str, taken: bool) -> None:
        """Record a conditional branch at the named static site."""
        site_id = self._branch_sites.get(site)
        if site_id is None:
            site_id = len(self._branch_sites)
            self._branch_sites[site] = site_id
        self.observer.on_branch(site_id, bool(taken))

    # -- system calls --------------------------------------------------------------

    def syscall(self, name: str, *, input_bytes: int = 0, output_bytes: int = 0) -> None:
        """An opaque system call with observable boundary byte counts."""
        self.observer.on_syscall_enter(name, input_bytes)
        self.observer.on_syscall_exit(name, output_bytes)


def run_interleaved(rt: TracedRuntime, workers: Dict[int, Iterator]) -> None:
    """Round-robin execute generator-based virtual threads.

    Each worker is a generator that performs traced work and ``yield``s at
    its voluntary switch points (the cooperative analogue of a scheduler
    quantum).  The helper switches the runtime to the worker's thread before
    each resumption and round-robins until every worker is exhausted, then
    returns on thread 0.

    Example::

        def worker(tid):
            def body():
                with rt.frame(f"stage{tid}"):
                    ...  # traced work
                    yield
                    ...  # more work after a context switch
            return body()

        run_interleaved(rt, {1: worker(1), 2: worker(2)})
    """
    pending = dict(workers)
    while pending:
        finished = []
        for tid, gen in pending.items():
            rt.switch_thread(tid)
            try:
                next(gen)
            except StopIteration:
                finished.append(tid)
        for tid in finished:
            del pending[tid]
    rt.switch_thread(0)
