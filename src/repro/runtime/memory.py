"""Traced memory for the Python-level substrate.

Workload kernels manipulate :class:`Buffer` objects.  Every traced access
emits the corresponding :meth:`on_mem_read` / :meth:`on_mem_write` primitive
with a real, stable byte address, so Sigil's shadow memory sees exactly the
same thing it would see under DBI.  Buffers also carry actual values (NumPy
arrays) so the kernels compute real results -- the workloads are miniature
programs, not event generators.

Two access families exist:

* ``read`` / ``write`` / ``read_block`` / ``write_block`` -- traced; visible
  to observers.
* ``peek`` / ``poke`` / ``peek_block`` / ``poke_block`` -- untraced; used to
  stage program *input* (the bytes a system call would deposit) and to
  inspect results in tests.  This mirrors the paper's syscall limitation:
  Valgrind cannot see stores performed inside the kernel, so input data first
  becomes visible to Sigil when the program reads it (the shadow entry is
  still "invalid", i.e. the byte has no recorded producer).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Sequence

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.runtime import TracedRuntime

__all__ = ["Buffer", "Arena", "MAX_ACCESS_BYTES"]

#: Block accesses larger than this are reported as multiple consecutive
#: memory events.  A real program touches a big array through many
#: individual loads; one giant range event would under-represent the
#: instrumentation work per byte, so block transport is capped.
MAX_ACCESS_BYTES = 2048


class Buffer:
    """A typed, contiguous, traced region of the program's address space."""

    __slots__ = ("_rt", "name", "base", "dtype", "length", "_data", "itemsize")

    def __init__(
        self,
        rt: "TracedRuntime",
        name: str,
        base: int,
        dtype: np.dtype,
        length: int,
    ):
        self._rt = rt
        self.name = name
        self.base = base
        self.dtype = np.dtype(dtype)
        self.length = length
        self.itemsize = self.dtype.itemsize
        self._data = np.zeros(length, dtype=self.dtype)

    # -- geometry -------------------------------------------------------

    @property
    def nbytes(self) -> int:
        return self.length * self.itemsize

    def addr_of(self, index: int) -> int:
        """Byte address of element ``index``."""
        return self.base + index * self.itemsize

    def _check(self, index: int) -> None:
        if not 0 <= index < self.length:
            raise IndexError(
                f"buffer {self.name!r}: index {index} out of range [0, {self.length})"
            )

    def _check_range(self, start: int, count: int) -> None:
        if count < 0:
            raise ValueError(f"buffer {self.name!r}: negative count {count}")
        if start < 0 or start + count > self.length:
            raise IndexError(
                f"buffer {self.name!r}: range [{start}, {start + count}) "
                f"out of [0, {self.length})"
            )

    # -- traced element access -------------------------------------------

    def read(self, index: int):
        """Read one element (traced)."""
        self._check(index)
        self._rt.observer.on_mem_read(self.base + index * self.itemsize, self.itemsize)
        return self._data[index]

    def write(self, index: int, value) -> None:
        """Write one element (traced)."""
        self._check(index)
        self._data[index] = value
        self._rt.observer.on_mem_write(self.base + index * self.itemsize, self.itemsize)

    # -- traced block access -----------------------------------------------

    def _emit_ranges(self, emit, start: int, count: int) -> None:
        """Report a block access, split into MAX_ACCESS_BYTES events."""
        addr = self.base + start * self.itemsize
        remaining = count * self.itemsize
        while remaining > 0:
            chunk = min(remaining, MAX_ACCESS_BYTES)
            emit(addr, chunk)
            addr += chunk
            remaining -= chunk

    def read_block(self, start: int = 0, count: Optional[int] = None) -> np.ndarray:
        """Read ``count`` consecutive elements as one logical traced access."""
        if count is None:
            count = self.length - start
        self._check_range(start, count)
        self._emit_ranges(self._rt.observer.on_mem_read, start, count)
        return self._data[start : start + count].copy()

    def write_block(self, values: Sequence | np.ndarray, start: int = 0) -> None:
        """Write consecutive elements as one logical traced access."""
        arr = np.asarray(values, dtype=self.dtype)
        self._check_range(start, len(arr))
        self._data[start : start + len(arr)] = arr
        self._emit_ranges(self._rt.observer.on_mem_write, start, len(arr))

    # -- untraced (staging / inspection) ---------------------------------

    def peek(self, index: int):
        self._check(index)
        return self._data[index]

    def poke(self, index: int, value) -> None:
        self._check(index)
        self._data[index] = value

    def peek_block(self, start: int = 0, count: Optional[int] = None) -> np.ndarray:
        if count is None:
            count = self.length - start
        self._check_range(start, count)
        return self._data[start : start + count].copy()

    def poke_block(self, values: Sequence | np.ndarray, start: int = 0) -> None:
        arr = np.asarray(values, dtype=self.dtype)
        self._check_range(start, len(arr))
        self._data[start : start + len(arr)] = arr

    def __len__(self) -> int:
        return self.length

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Buffer({self.name!r}, base=0x{self.base:x}, "
            f"dtype={self.dtype}, length={self.length})"
        )


class Arena:
    """Hands out disjoint address ranges for buffers.

    Buffers are aligned to their item size and padded so that distinct
    buffers never share a cache line; this keeps the line-granularity mode
    (Figure 12) free of false sharing artifacts introduced by the allocator
    rather than the workload.
    """

    def __init__(self, rt: "TracedRuntime", *, base: int = 0x1000_0000, line: int = 64):
        self._rt = rt
        self._next = base
        self._line = line

    def alloc(self, name: str, dtype, length: int) -> Buffer:
        dt = np.dtype(dtype)
        align = max(dt.itemsize, self._line)
        base = (self._next + align - 1) & ~(align - 1)
        self._next = base + length * dt.itemsize
        return Buffer(self._rt, name, base, dt, length)

    def alloc_f64(self, name: str, length: int) -> Buffer:
        return self.alloc(name, np.float64, length)

    def alloc_i64(self, name: str, length: int) -> Buffer:
        return self.alloc(name, np.int64, length)

    def alloc_i32(self, name: str, length: int) -> Buffer:
        return self.alloc(name, np.int32, length)

    def alloc_u8(self, name: str, length: int) -> Buffer:
        return self.alloc(name, np.uint8, length)
