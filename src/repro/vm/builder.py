"""Assembler-style builder API for constructing mini-VM programs.

The builder plays the role of a tiny compiler frontend: virtual registers
are allocated on demand, labels are first-class objects bound to positions,
and every structural rule is checked when the program is finalised.

Example
-------
>>> pb = ProgramBuilder()
>>> f = pb.function("main")
>>> buf = f.const(0x1000)
>>> x = f.const(7)
>>> f.store(x, buf, offset=0, size=4)
>>> y = f.load(buf, offset=0, size=4)
>>> _ = f.add(x, y)
>>> f.ret()
>>> program = pb.build()
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.vm.errors import ProgramError, UnknownLabelError
from repro.vm.isa import (
    Alu,
    AluImm,
    BranchIf,
    Call,
    Const,
    FAlu,
    FUnary,
    Halt,
    Instr,
    Jump,
    Load,
    Mov,
    Ret,
    Store,
    Syscall,
)
from repro.vm.program import Function, Program

__all__ = ["Label", "FunctionBuilder", "ProgramBuilder"]


class Label:
    """A branch target; create with :meth:`FunctionBuilder.label`, then bind."""

    __slots__ = ("_id", "position")

    def __init__(self, label_id: int):
        self._id = label_id
        self.position: Optional[int] = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Label(#{self._id}, pos={self.position})"


class FunctionBuilder:
    """Builds one function; most methods return the destination register."""

    def __init__(self, name: str, n_params: int = 0):
        self.name = name
        self.n_params = n_params
        self._code: List[Instr] = []
        self._next_reg = n_params
        self._labels: List[Label] = []
        self._branch_fixups: List[tuple[int, Label]] = []
        self._next_site = 0
        self._finalised = False

    # -- registers and labels -------------------------------------------

    def param(self, index: int) -> int:
        """Register holding the ``index``-th argument."""
        if not 0 <= index < self.n_params:
            raise ProgramError(
                f"{self.name}: parameter {index} out of range ({self.n_params} params)"
            )
        return index

    def reg(self) -> int:
        """Allocate a fresh virtual register."""
        r = self._next_reg
        self._next_reg += 1
        return r

    def label(self) -> Label:
        lab = Label(len(self._labels))
        self._labels.append(lab)
        return lab

    def bind(self, label: Label) -> None:
        """Bind ``label`` to the next emitted instruction."""
        if label.position is not None:
            raise ProgramError(f"{self.name}: label bound twice")
        label.position = len(self._code)

    # -- data movement ---------------------------------------------------

    def const(self, value: float | int, dst: Optional[int] = None) -> int:
        dst = self.reg() if dst is None else dst
        self._code.append(Const(dst, value))
        return dst

    def mov(self, src: int, dst: Optional[int] = None) -> int:
        dst = self.reg() if dst is None else dst
        self._code.append(Mov(dst, src))
        return dst

    # -- integer ALU -------------------------------------------------------

    def alu(self, op: str, a: int, b: int, dst: Optional[int] = None) -> int:
        dst = self.reg() if dst is None else dst
        self._code.append(Alu(op, dst, a, b))
        return dst

    def alui(self, op: str, a: int, imm: int, dst: Optional[int] = None) -> int:
        dst = self.reg() if dst is None else dst
        self._code.append(AluImm(op, dst, a, imm))
        return dst

    def add(self, a: int, b: int, dst: Optional[int] = None) -> int:
        return self.alu("add", a, b, dst)

    def sub(self, a: int, b: int, dst: Optional[int] = None) -> int:
        return self.alu("sub", a, b, dst)

    def mul(self, a: int, b: int, dst: Optional[int] = None) -> int:
        return self.alu("mul", a, b, dst)

    def addi(self, a: int, imm: int, dst: Optional[int] = None) -> int:
        return self.alui("add", a, imm, dst)

    def muli(self, a: int, imm: int, dst: Optional[int] = None) -> int:
        return self.alui("mul", a, imm, dst)

    def lt(self, a: int, b: int, dst: Optional[int] = None) -> int:
        return self.alu("lt", a, b, dst)

    # -- float ALU ---------------------------------------------------------

    def falu(self, op: str, a: int, b: int, dst: Optional[int] = None) -> int:
        dst = self.reg() if dst is None else dst
        self._code.append(FAlu(op, dst, a, b))
        return dst

    def funary(self, op: str, a: int, dst: Optional[int] = None) -> int:
        dst = self.reg() if dst is None else dst
        self._code.append(FUnary(op, dst, a))
        return dst

    def fadd(self, a: int, b: int, dst: Optional[int] = None) -> int:
        return self.falu("fadd", a, b, dst)

    def fmul(self, a: int, b: int, dst: Optional[int] = None) -> int:
        return self.falu("fmul", a, b, dst)

    # -- memory --------------------------------------------------------------

    def load(
        self,
        base: int,
        offset: int = 0,
        size: int = 8,
        *,
        is_float: bool = False,
        dst: Optional[int] = None,
    ) -> int:
        dst = self.reg() if dst is None else dst
        self._code.append(Load(dst, base, offset, size, is_float))
        return dst

    def store(
        self,
        src: int,
        base: int,
        offset: int = 0,
        size: int = 8,
        *,
        is_float: bool = False,
    ) -> None:
        self._code.append(Store(src, base, offset, size, is_float))

    # -- control flow ---------------------------------------------------------

    def jump(self, label: Label) -> None:
        self._branch_fixups.append((len(self._code), label))
        self._code.append(Jump(-1))

    def branch_if(self, cond: int, label: Label) -> None:
        site = self._next_site
        self._next_site += 1
        self._branch_fixups.append((len(self._code), label))
        self._code.append(BranchIf(cond, -1, site))

    def call(
        self, func: str, args: Sequence[int] = (), dst: Optional[int] = None
    ) -> Optional[int]:
        self._code.append(Call(func, tuple(args), dst))
        return dst

    def call_value(self, func: str, args: Sequence[int] = ()) -> int:
        """Call ``func`` and allocate a register for its return value."""
        dst = self.reg()
        self._code.append(Call(func, tuple(args), dst))
        return dst

    def ret(self, src: Optional[int] = None) -> None:
        self._code.append(Ret(src))

    def syscall(self, name: str, input_bytes: int = 0, output_bytes: int = 0) -> None:
        self._code.append(Syscall(name, input_bytes, output_bytes))

    def halt(self) -> None:
        self._code.append(Halt())

    # -- finalisation -----------------------------------------------------------

    def finalise(self) -> Function:
        if self._finalised:
            raise ProgramError(f"{self.name}: function finalised twice")
        self._finalised = True
        if not self._code or not isinstance(self._code[-1], (Ret, Halt, Jump)):
            self._code.append(Ret(None))
        code = list(self._code)
        for index, label in self._branch_fixups:
            if label.position is None:
                raise UnknownLabelError(f"{self.name}: unbound label {label!r}")
            ins = code[index]
            if isinstance(ins, Jump):
                code[index] = Jump(label.position)
            else:
                assert isinstance(ins, BranchIf)
                code[index] = BranchIf(ins.cond, label.position, ins.site)
        return Function(self.name, self.n_params, tuple(code), max(self._next_reg, 1))


class ProgramBuilder:
    """Accumulates function builders and produces a validated Program."""

    def __init__(self, entry: str = "main"):
        self.entry = entry
        self._builders: Dict[str, FunctionBuilder] = {}

    def function(self, name: str, n_params: int = 0) -> FunctionBuilder:
        if name in self._builders:
            raise ProgramError(f"duplicate function {name!r}")
        fb = FunctionBuilder(name, n_params)
        self._builders[name] = fb
        return fb

    def build(self) -> Program:
        program = Program(entry=self.entry)
        for fb in self._builders.values():
            program.add(fb.finalise())
        program.validate()
        return program
