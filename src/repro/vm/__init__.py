"""Mini virtual-machine substrate: the reproduction's "native binary".

The VM plays the role Valgrind-instrumented machine code plays in the paper:
a deterministic source of function entries/exits, memory accesses, and
operation counts that Sigil and the Callgrind-equivalent observe.
"""

from repro.vm.builder import FunctionBuilder, Label, ProgramBuilder
from repro.vm.errors import (
    ExecutionLimitExceeded,
    InvalidRegisterError,
    MemoryFault,
    ProgramError,
    UnknownFunctionError,
    UnknownLabelError,
    VMError,
)
from repro.vm.machine import Machine, MachineResult
from repro.vm.memory import PAGE_SIZE, FlatMemory
from repro.vm.program import Function, Program

__all__ = [
    "FunctionBuilder",
    "Label",
    "ProgramBuilder",
    "ExecutionLimitExceeded",
    "InvalidRegisterError",
    "MemoryFault",
    "ProgramError",
    "UnknownFunctionError",
    "UnknownLabelError",
    "VMError",
    "Machine",
    "MachineResult",
    "PAGE_SIZE",
    "FlatMemory",
    "Function",
    "Program",
]
