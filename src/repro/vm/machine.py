"""The mini-VM interpreter: executes a Program and narrates it to an observer.

The machine is this reproduction's stand-in for a native binary under
Valgrind: every retired instruction is visible to the attached
:class:`~repro.trace.observer.TraceObserver` as the corresponding primitive
(function entry/exit, memory access, operation, branch, syscall).  Running
with a :class:`~repro.trace.observer.NullObserver` is the "native" baseline
of the overhead study (Figure 4).

Execution is fully deterministic: no wall-clock, no host randomness.
"""

from __future__ import annotations

import math
from typing import List, Optional

from repro.telemetry.session import NULL_TELEMETRY
from repro.trace.events import OpKind
from repro.trace.observer import NullObserver, TraceObserver
from repro.vm.errors import ExecutionLimitExceeded, VMError
from repro.vm.isa import (
    Alu,
    AluImm,
    BranchIf,
    Call,
    Const,
    FAlu,
    FUnary,
    Halt,
    Jump,
    Load,
    Mov,
    Ret,
    Store,
    Syscall,
)
from repro.vm.memory import FlatMemory
from repro.vm.program import Function, Program

__all__ = ["Machine", "MachineResult"]

_INT_OPS = {
    "add": lambda a, b: a + b,
    "sub": lambda a, b: a - b,
    "mul": lambda a, b: a * b,
    "div": lambda a, b: _checked_div(a, b),
    "mod": lambda a, b: _checked_mod(a, b),
    "and": lambda a, b: int(a) & int(b),
    "or": lambda a, b: int(a) | int(b),
    "xor": lambda a, b: int(a) ^ int(b),
    "shl": lambda a, b: int(a) << int(b),
    "shr": lambda a, b: int(a) >> int(b),
    "lt": lambda a, b: int(a < b),
    "le": lambda a, b: int(a <= b),
    "eq": lambda a, b: int(a == b),
    "ne": lambda a, b: int(a != b),
    "gt": lambda a, b: int(a > b),
    "ge": lambda a, b: int(a >= b),
    "min": min,
    "max": max,
}

_FLOAT_OPS = {
    "fadd": lambda a, b: a + b,
    "fsub": lambda a, b: a - b,
    "fmul": lambda a, b: a * b,
    "fdiv": lambda a, b: _checked_fdiv(a, b),
    "fmin": min,
    "fmax": max,
}

def _checked_sqrt(a: float) -> float:
    if a < 0.0:
        raise VMError(f"fsqrt of negative value {a}")
    return math.sqrt(a)


def _checked_exp(a: float) -> float:
    if a > 709.0:  # exp(709.78...) overflows float64
        raise VMError(f"fexp overflow for operand {a}")
    return math.exp(a)


def _checked_log(a: float) -> float:
    if a <= 0.0:
        raise VMError(f"flog of non-positive value {a}")
    return math.log(a)


_FUNARY_OPS = {
    "fneg": lambda a: -a,
    "fabs": abs,
    "fsqrt": _checked_sqrt,
    "fexp": _checked_exp,
    "flog": _checked_log,
}


def _checked_div(a: int, b: int) -> int:
    if b == 0:
        raise VMError("integer division by zero")
    return int(a) // int(b)


def _checked_mod(a: int, b: int) -> int:
    if b == 0:
        raise VMError("integer modulo by zero")
    return int(a) % int(b)


def _checked_fdiv(a: float, b: float) -> float:
    if b == 0.0:
        raise VMError("float division by zero")
    return a / b


class _Frame:
    __slots__ = ("func", "pc", "regs", "ret_dst")

    def __init__(self, func: Function, ret_dst: Optional[int]):
        self.func = func
        self.pc = 0
        self.regs: List[float | int] = [0] * func.n_regs
        self.ret_dst = ret_dst


class MachineResult:
    """Outcome of a run: the entry function's return value plus counters."""

    __slots__ = ("value", "instructions")

    def __init__(self, value: float | int | None, instructions: int):
        self.value = value
        self.instructions = instructions

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MachineResult(value={self.value!r}, instructions={self.instructions})"


class Machine:
    """Interprets a :class:`~repro.vm.program.Program`.

    Parameters
    ----------
    memory:
        Backing memory; a fresh strict :class:`FlatMemory` by default.
    max_instructions:
        Fuel limit guarding against runaway programs (tests, fuzzing).
    """

    def __init__(
        self,
        memory: Optional[FlatMemory] = None,
        *,
        max_instructions: int = 500_000_000,
        telemetry=None,
    ):
        self.memory = memory if memory is not None else FlatMemory()
        self.max_instructions = max_instructions
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY

    def run(
        self,
        program: Program,
        observer: Optional[TraceObserver] = None,
        *,
        validate: bool = True,
        batch_size: int = 0,
    ) -> MachineResult:
        """Execute ``program`` from its entry function to completion.

        With ``batch_size > 0`` the machine narrates memory traffic through
        the batched trace transport: Load/Store primitives accumulate in
        preallocated NumPy ring buffers and reach ``observer`` as whole
        batches (``on_mem_batch``) at function/syscall/branch/thread
        boundaries, instead of one observer call per access.  The observed
        profile is identical; only dispatch cost changes.
        """
        if validate:
            program.validate()
        obs = observer if observer is not None else NullObserver()
        if batch_size > 0 and observer is not None:
            from repro.trace.batch import BatchingTransport

            obs = BatchingTransport(obs, batch_size)
        mem = self.memory
        retired = 0
        budget = self.max_instructions

        obs.on_run_begin()
        entry = program.functions[program.entry]
        obs.on_fn_enter(entry.name)
        stack: List[_Frame] = [_Frame(entry, None)]
        result: float | int | None = None

        while stack:
            frame = stack[-1]
            code = frame.func.code
            if frame.pc >= len(code):
                # Fall off the end: implicit return (builder normally
                # guarantees an explicit Ret, but hand-built programs may not).
                obs.on_fn_exit(frame.func.name)
                stack.pop()
                continue
            ins = code[frame.pc]
            frame.pc += 1
            retired += 1
            if retired > budget:
                raise ExecutionLimitExceeded(
                    f"exceeded {budget} instructions (runaway program?)"
                )
            regs = frame.regs

            if isinstance(ins, Alu):
                regs[ins.dst] = _INT_OPS[ins.op](regs[ins.a], regs[ins.b])
                obs.on_op(OpKind.INT, 1)
            elif isinstance(ins, AluImm):
                regs[ins.dst] = _INT_OPS[ins.op](regs[ins.a], ins.imm)
                obs.on_op(OpKind.INT, 1)
            elif isinstance(ins, FAlu):
                regs[ins.dst] = _FLOAT_OPS[ins.op](float(regs[ins.a]), float(regs[ins.b]))
                obs.on_op(OpKind.FLOAT, 1)
            elif isinstance(ins, FUnary):
                regs[ins.dst] = _FUNARY_OPS[ins.op](float(regs[ins.a]))
                obs.on_op(OpKind.FLOAT, 1)
            elif isinstance(ins, Load):
                addr = int(regs[ins.base]) + ins.offset
                if ins.is_float:
                    regs[ins.dst] = mem.read_float(addr)
                else:
                    regs[ins.dst] = mem.read_int(addr, ins.size)
                obs.on_mem_read(addr, ins.size)
            elif isinstance(ins, Store):
                addr = int(regs[ins.base]) + ins.offset
                if ins.is_float:
                    mem.write_float(addr, float(regs[ins.src]))
                else:
                    mem.write_int(addr, int(regs[ins.src]), ins.size)
                obs.on_mem_write(addr, ins.size)
            elif isinstance(ins, Const):
                regs[ins.dst] = ins.value
                obs.on_op(OpKind.INT, 1)
            elif isinstance(ins, Mov):
                regs[ins.dst] = regs[ins.src]
                obs.on_op(OpKind.INT, 1)
            elif isinstance(ins, BranchIf):
                taken = bool(regs[ins.cond])
                obs.on_branch(ins.site, taken)
                if taken:
                    frame.pc = ins.target
            elif isinstance(ins, Jump):
                frame.pc = ins.target
            elif isinstance(ins, Call):
                callee = program.functions[ins.func]
                new_frame = _Frame(callee, ins.dst)
                for i, reg in enumerate(ins.args):
                    new_frame.regs[i] = regs[reg]
                obs.on_fn_enter(callee.name)
                stack.append(new_frame)
            elif isinstance(ins, Ret):
                value = regs[ins.src] if ins.src is not None else None
                obs.on_fn_exit(frame.func.name)
                stack.pop()
                if stack:
                    if frame.ret_dst is not None:
                        stack[-1].regs[frame.ret_dst] = value if value is not None else 0
                else:
                    result = value
            elif isinstance(ins, Syscall):
                obs.on_syscall_enter(ins.name, ins.input_bytes)
                obs.on_syscall_exit(ins.name, ins.output_bytes)
            elif isinstance(ins, Halt):
                while stack:
                    obs.on_fn_exit(stack.pop().func.name)
            else:  # pragma: no cover - defensive
                raise VMError(f"unknown instruction {ins!r}")

        obs.on_run_end()
        # Whole-run accounting: one call regardless of run length, so the
        # interpreter loop itself stays telemetry-free.
        self.telemetry.counter("vm.instructions_retired").inc(retired)
        self.telemetry.counter("vm.runs").inc(1)
        return MachineResult(result, retired)
