"""Error hierarchy for the mini-VM substrate."""

from __future__ import annotations

__all__ = [
    "VMError",
    "ProgramError",
    "UnknownFunctionError",
    "UnknownLabelError",
    "InvalidRegisterError",
    "MemoryFault",
    "ExecutionLimitExceeded",
]


class VMError(Exception):
    """Base class for all VM errors."""


class ProgramError(VMError):
    """The program is structurally invalid (validation-time error)."""


class UnknownFunctionError(ProgramError):
    """A call references a function that is not defined in the program."""


class UnknownLabelError(ProgramError):
    """A branch references a label that was never placed."""


class InvalidRegisterError(ProgramError):
    """An instruction references a register outside the frame."""


class MemoryFault(VMError):
    """An access touched an address outside any mapped region."""

    def __init__(self, addr: int, size: int = 1):
        super().__init__(f"memory fault at 0x{addr:x} (size {size})")
        self.addr = addr
        self.size = size


class ExecutionLimitExceeded(VMError):
    """The machine exceeded its configured instruction budget."""
