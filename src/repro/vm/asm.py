"""Textual assembler and disassembler for the mini-VM.

Lets programs be authored, stored and profiled without writing Python --
the moral equivalent of handing Sigil a binary.  Syntax::

    ; comment
    .func main
        const r0, 4096
        const r1, 7
        store r1, [r0+0], 8
        load  r2, [r0+0], 8
        add   r3, r1, r2
        call  helper, r0 -> r4
        syscall write, in=8
        ret   r3

    .func helper/1        ; one parameter, arrives in r0
    loop:
        subi  r0, r0, 1
        gti   r1, r0, 0
        br    r1, loop
        ret   r0

* ``.func NAME[/NPARAMS]`` opens a function; instructions follow until the
  next directive.
* Registers are ``rN``; the assembler validates against each function's
  frame (registers are allocated implicitly up to the highest used).
* Integer ALU mnemonics take three registers; an ``i`` suffix makes the
  last operand an immediate (``addi r1, r2, 5``).
* Memory operands are ``[rBASE+OFFSET], SIZE`` with an optional ``, f``
  for float access.
* ``call NAME[, rARG...][ -> rDST]``; ``br rCOND, LABEL``; ``jmp LABEL``;
  ``syscall NAME[, in=N][, out=N]``.

:func:`assemble` returns a validated :class:`~repro.vm.program.Program`;
:func:`disassemble` renders one back (assemble∘disassemble is identity on
the instruction stream).
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from repro.vm.builder import FunctionBuilder, Label, ProgramBuilder
from repro.vm.errors import ProgramError
from repro.vm.isa import (
    ALU_OPS,
    FALU_OPS,
    FUNARY_OPS,
    Alu,
    AluImm,
    BranchIf,
    Call,
    Const,
    FAlu,
    FUnary,
    Halt,
    Jump,
    Load,
    Mov,
    Ret,
    Store,
    Syscall,
)
from repro.vm.program import Function, Program

__all__ = ["assemble", "disassemble", "AsmError"]


class AsmError(ProgramError):
    """Syntax or semantic error in assembly text."""

    def __init__(self, line_no: int, message: str):
        super().__init__(f"line {line_no}: {message}")
        self.line_no = line_no


_REG = re.compile(r"^r(\d+)$")
_MEM = re.compile(r"^\[r(\d+)([+-]\d+)?\]$")
_FUNC = re.compile(r"^\.func\s+(\S+?)(?:/(\d+))?$")


def _parse_reg(token: str, line_no: int) -> int:
    match = _REG.match(token)
    if not match:
        raise AsmError(line_no, f"expected register, got {token!r}")
    return int(match.group(1))


def _parse_imm(token: str, line_no: int) -> float | int:
    try:
        if token.lower().startswith(("0x", "-0x")):
            return int(token, 16)
        if any(c in token for c in ".eE") and not token.lower().startswith("0x"):
            return float(token)
        return int(token)
    except ValueError:
        raise AsmError(line_no, f"expected number, got {token!r}") from None


def _split_operands(rest: str) -> List[str]:
    """Split on commas not inside brackets."""
    parts: List[str] = []
    depth = 0
    current = ""
    for ch in rest:
        if ch == "[":
            depth += 1
        elif ch == "]":
            depth -= 1
        if ch == "," and depth == 0:
            parts.append(current.strip())
            current = ""
        else:
            current += ch
    if current.strip():
        parts.append(current.strip())
    return parts


class _FnAsm:
    """Assembly state for one function."""

    def __init__(self, name: str, n_params: int):
        self.builder = FunctionBuilder(name, n_params)
        self.labels: Dict[str, Label] = {}
        self.max_reg = n_params - 1

    def reg(self, token: str, line_no: int) -> int:
        r = _parse_reg(token, line_no)
        self.max_reg = max(self.max_reg, r)
        return r

    def label(self, name: str) -> Label:
        lab = self.labels.get(name)
        if lab is None:
            lab = self.builder.label()
            self.labels[name] = lab
        return lab


def _parse_mem(token: str, line_no: int) -> Tuple[int, int]:
    match = _MEM.match(token.replace(" ", ""))
    if not match:
        raise AsmError(line_no, f"expected [rN+OFF] operand, got {token!r}")
    return int(match.group(1)), int(match.group(2) or 0)


def assemble(text: str, *, entry: str = "main") -> Program:
    """Assemble a program from text (see module docstring for the syntax)."""
    pb = ProgramBuilder(entry=entry)
    current: Optional[_FnAsm] = None
    functions: List[_FnAsm] = []

    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.split(";", 1)[0].strip()
        if not line:
            continue

        directive = _FUNC.match(line)
        if directive:
            name = directive.group(1)
            n_params = int(directive.group(2) or 0)
            fb = pb.function(name, n_params)
            current = _FnAsm(name, n_params)
            current.builder = fb
            functions.append(current)
            continue

        if current is None:
            raise AsmError(line_no, "instruction outside of a .func block")

        if line.endswith(":"):
            label_name = line[:-1].strip()
            if not label_name:
                raise AsmError(line_no, "empty label name")
            current.builder.bind(current.label(label_name))
            continue

        _assemble_instruction(current, line, line_no)

    if current is None:
        raise AsmError(0, "no functions defined")

    # Frames must cover every referenced register.
    for fn in functions:
        fn.builder._next_reg = max(fn.builder._next_reg, fn.max_reg + 1)
    return pb.build()


def _assemble_instruction(fn: _FnAsm, line: str, line_no: int) -> None:
    mnemonic, _, rest = line.partition(" ")
    mnemonic = mnemonic.lower()
    ops = _split_operands(rest)
    b = fn.builder

    def need(n: int) -> None:
        if len(ops) != n:
            raise AsmError(
                line_no, f"{mnemonic} expects {n} operand(s), got {len(ops)}"
            )

    if mnemonic == "const":
        need(2)
        b.const(_parse_imm(ops[1], line_no), dst=fn.reg(ops[0], line_no))
    elif mnemonic == "mov":
        need(2)
        b.mov(fn.reg(ops[1], line_no), dst=fn.reg(ops[0], line_no))
    elif mnemonic in ALU_OPS:
        need(3)
        b.alu(
            mnemonic,
            fn.reg(ops[1], line_no),
            fn.reg(ops[2], line_no),
            dst=fn.reg(ops[0], line_no),
        )
    elif mnemonic.endswith("i") and mnemonic[:-1] in ALU_OPS:
        need(3)
        b.alui(
            mnemonic[:-1],
            fn.reg(ops[1], line_no),
            int(_parse_imm(ops[2], line_no)),
            dst=fn.reg(ops[0], line_no),
        )
    elif mnemonic in FALU_OPS:
        need(3)
        b.falu(
            mnemonic,
            fn.reg(ops[1], line_no),
            fn.reg(ops[2], line_no),
            dst=fn.reg(ops[0], line_no),
        )
    elif mnemonic in FUNARY_OPS:
        need(2)
        b.funary(mnemonic, fn.reg(ops[1], line_no), dst=fn.reg(ops[0], line_no))
    elif mnemonic in ("load", "store"):
        if len(ops) not in (3, 4):
            raise AsmError(line_no, f"{mnemonic} expects 3-4 operands")
        is_float = len(ops) == 4 and ops[3].lower() == "f"
        if len(ops) == 4 and not is_float:
            raise AsmError(line_no, f"unknown access qualifier {ops[3]!r}")
        base, offset = _parse_mem(ops[1], line_no)
        fn.max_reg = max(fn.max_reg, base)
        size = int(_parse_imm(ops[2], line_no))
        if mnemonic == "load":
            b.load(base, offset, size, is_float=is_float,
                   dst=fn.reg(ops[0], line_no))
        else:
            b.store(fn.reg(ops[0], line_no), base, offset, size, is_float=is_float)
    elif mnemonic == "br":
        need(2)
        b.branch_if(fn.reg(ops[0], line_no), fn.label(ops[1]))
    elif mnemonic == "jmp":
        need(1)
        b.jump(fn.label(ops[0]))
    elif mnemonic == "call":
        if not ops:
            raise AsmError(line_no, "call needs a function name")
        dst: Optional[int] = None
        last = ops[-1]
        if "->" in last:
            arg_part, _, dst_token = last.partition("->")
            dst = fn.reg(dst_token.strip(), line_no)
            if arg_part.strip():
                ops[-1] = arg_part.strip()
            else:
                ops.pop()
        args = [fn.reg(tok, line_no) for tok in ops[1:]]
        b.call(ops[0], args=args, dst=dst)
    elif mnemonic == "ret":
        if len(ops) > 1:
            raise AsmError(line_no, "ret takes at most one register")
        b.ret(fn.reg(ops[0], line_no) if ops else None)
    elif mnemonic == "syscall":
        if not ops:
            raise AsmError(line_no, "syscall needs a name")
        input_bytes = output_bytes = 0
        for extra in ops[1:]:
            key, _, value = extra.partition("=")
            if key.strip() == "in":
                input_bytes = int(_parse_imm(value.strip(), line_no))
            elif key.strip() == "out":
                output_bytes = int(_parse_imm(value.strip(), line_no))
            else:
                raise AsmError(line_no, f"unknown syscall option {extra!r}")
        b.syscall(ops[0], input_bytes, output_bytes)
    elif mnemonic == "halt":
        need(0)
        b.halt()
    else:
        raise AsmError(line_no, f"unknown mnemonic {mnemonic!r}")


# ---------------------------------------------------------------------------
# disassembler
# ---------------------------------------------------------------------------


def _dis_instruction(ins, labels: Dict[int, str]) -> str:
    if isinstance(ins, Const):
        return f"const r{ins.dst}, {ins.value}"
    if isinstance(ins, Mov):
        return f"mov r{ins.dst}, r{ins.src}"
    if isinstance(ins, Alu):
        return f"{ins.op} r{ins.dst}, r{ins.a}, r{ins.b}"
    if isinstance(ins, AluImm):
        return f"{ins.op}i r{ins.dst}, r{ins.a}, {ins.imm}"
    if isinstance(ins, FAlu):
        return f"{ins.op} r{ins.dst}, r{ins.a}, r{ins.b}"
    if isinstance(ins, FUnary):
        return f"{ins.op} r{ins.dst}, r{ins.a}"
    if isinstance(ins, Load):
        suffix = ", f" if ins.is_float else ""
        return f"load r{ins.dst}, [r{ins.base}+{ins.offset}], {ins.size}{suffix}"
    if isinstance(ins, Store):
        suffix = ", f" if ins.is_float else ""
        return f"store r{ins.src}, [r{ins.base}+{ins.offset}], {ins.size}{suffix}"
    if isinstance(ins, Jump):
        return f"jmp {labels[ins.target]}"
    if isinstance(ins, BranchIf):
        return f"br r{ins.cond}, {labels[ins.target]}"
    if isinstance(ins, Call):
        args = "".join(f", r{a}" for a in ins.args)
        dst = f" -> r{ins.dst}" if ins.dst is not None else ""
        return f"call {ins.func}{args}{dst}"
    if isinstance(ins, Ret):
        return f"ret r{ins.src}" if ins.src is not None else "ret"
    if isinstance(ins, Syscall):
        parts = [f"syscall {ins.name}"]
        if ins.input_bytes:
            parts.append(f"in={ins.input_bytes}")
        if ins.output_bytes:
            parts.append(f"out={ins.output_bytes}")
        return ", ".join(parts)
    if isinstance(ins, Halt):
        return "halt"
    raise TypeError(f"unknown instruction {ins!r}")  # pragma: no cover


def _dis_function(func: Function) -> List[str]:
    targets = sorted({
        ins.target
        for ins in func.code
        if isinstance(ins, (Jump, BranchIf))
    })
    labels = {t: f"L{i}" for i, t in enumerate(targets)}
    suffix = f"/{func.n_params}" if func.n_params else ""
    lines = [f".func {func.name}{suffix}"]
    for pc, ins in enumerate(func.code):
        if pc in labels:
            lines.append(f"{labels[pc]}:")
        lines.append(f"    {_dis_instruction(ins, labels)}")
    if len(func.code) in labels:  # label at end-of-code
        lines.append(f"{labels[len(func.code)]}:")
    return lines


def disassemble(program: Program) -> str:
    """Render a program back to assembly text."""
    blocks = []
    # Entry function first for readability, then the rest in name order.
    names = sorted(program.functions, key=lambda n: (n != program.entry, n))
    for name in names:
        blocks.append("\n".join(_dis_function(program.functions[name])))
    return "\n\n".join(blocks) + "\n"
