"""Program and function containers for the mini-VM, with static validation."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

from repro.vm.errors import (
    InvalidRegisterError,
    ProgramError,
    UnknownFunctionError,
    UnknownLabelError,
)
from repro.vm.isa import (
    ALU_OPS,
    FALU_OPS,
    FUNARY_OPS,
    Alu,
    AluImm,
    BranchIf,
    Call,
    Const,
    FAlu,
    FUnary,
    Halt,
    Instr,
    Jump,
    Load,
    Mov,
    Ret,
    Store,
    Syscall,
)

__all__ = ["Function", "Program"]


@dataclass(frozen=True)
class Function:
    """A finalised function: a name, an arity, and straight-line code.

    ``n_regs`` is the size of the register frame; the builder guarantees all
    register references are below it.  Branch targets have been resolved to
    instruction indices.
    """

    name: str
    n_params: int
    code: Tuple[Instr, ...]
    n_regs: int

    def __len__(self) -> int:
        return len(self.code)


@dataclass
class Program:
    """A collection of functions with a designated entry point."""

    functions: Dict[str, Function] = field(default_factory=dict)
    entry: str = "main"

    def add(self, func: Function) -> None:
        if func.name in self.functions:
            raise ProgramError(f"duplicate function {func.name!r}")
        self.functions[func.name] = func

    def validate(self) -> None:
        """Statically check the whole program.

        Verifies: the entry function exists and takes no parameters, all call
        targets are defined with matching arity, register references fit in
        their frames, branch targets are in-range instruction indices, and
        opcode mnemonics are legal.
        """
        if self.entry not in self.functions:
            raise UnknownFunctionError(f"entry function {self.entry!r} missing")
        if self.functions[self.entry].n_params != 0:
            raise ProgramError(f"entry function {self.entry!r} must take no parameters")
        for func in self.functions.values():
            self._validate_function(func)

    def _validate_function(self, func: Function) -> None:
        n = len(func.code)

        def check_reg(reg: int) -> None:
            if not 0 <= reg < func.n_regs:
                raise InvalidRegisterError(
                    f"{func.name}: register r{reg} outside frame of {func.n_regs}"
                )

        def check_target(target: int) -> None:
            if not 0 <= target <= n:
                raise UnknownLabelError(
                    f"{func.name}: branch target {target} outside code of length {n}"
                )

        for ins in func.code:
            if isinstance(ins, Const):
                check_reg(ins.dst)
            elif isinstance(ins, Mov):
                check_reg(ins.dst)
                check_reg(ins.src)
            elif isinstance(ins, Alu):
                if ins.op not in ALU_OPS:
                    raise ProgramError(f"{func.name}: bad ALU op {ins.op!r}")
                check_reg(ins.dst)
                check_reg(ins.a)
                check_reg(ins.b)
            elif isinstance(ins, AluImm):
                if ins.op not in ALU_OPS:
                    raise ProgramError(f"{func.name}: bad ALU op {ins.op!r}")
                check_reg(ins.dst)
                check_reg(ins.a)
            elif isinstance(ins, FAlu):
                if ins.op not in FALU_OPS:
                    raise ProgramError(f"{func.name}: bad float op {ins.op!r}")
                check_reg(ins.dst)
                check_reg(ins.a)
                check_reg(ins.b)
            elif isinstance(ins, FUnary):
                if ins.op not in FUNARY_OPS:
                    raise ProgramError(f"{func.name}: bad float op {ins.op!r}")
                check_reg(ins.dst)
                check_reg(ins.a)
            elif isinstance(ins, Load):
                check_reg(ins.dst)
                check_reg(ins.base)
                if ins.size <= 0:
                    raise ProgramError(f"{func.name}: load of size {ins.size}")
            elif isinstance(ins, Store):
                check_reg(ins.src)
                check_reg(ins.base)
                if ins.size <= 0:
                    raise ProgramError(f"{func.name}: store of size {ins.size}")
            elif isinstance(ins, Jump):
                check_target(ins.target)
            elif isinstance(ins, BranchIf):
                check_reg(ins.cond)
                check_target(ins.target)
            elif isinstance(ins, Call):
                callee = self.functions.get(ins.func)
                if callee is None:
                    raise UnknownFunctionError(
                        f"{func.name}: call to undefined function {ins.func!r}"
                    )
                if len(ins.args) != callee.n_params:
                    raise ProgramError(
                        f"{func.name}: call to {ins.func!r} with {len(ins.args)} "
                        f"args, expected {callee.n_params}"
                    )
                for reg in ins.args:
                    check_reg(reg)
                if ins.dst is not None:
                    check_reg(ins.dst)
            elif isinstance(ins, Ret):
                if ins.src is not None:
                    check_reg(ins.src)
            elif isinstance(ins, (Syscall, Halt)):
                pass
            else:  # pragma: no cover - defensive
                raise ProgramError(f"{func.name}: unknown instruction {ins!r}")
