"""Instruction set of the mini-VM substrate.

A small register ISA, rich enough to express the paper's toy programs and
micro-kernels: integer and floating-point ALU operations, typed loads and
stores, conditional branches, calls/returns with register-passed arguments,
and opaque system calls.  Instructions are immutable data; their semantics
live in :class:`repro.vm.machine.Machine`.

Registers are frame-local and identified by small integers (``r0`` receives
the first argument, and so on).  Branch targets are label ids that the
builder resolves to instruction indices at finalisation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

__all__ = [
    "Instr",
    "Const",
    "Mov",
    "Alu",
    "AluImm",
    "FAlu",
    "FUnary",
    "Load",
    "Store",
    "Jump",
    "BranchIf",
    "Call",
    "Ret",
    "Syscall",
    "Halt",
    "ALU_OPS",
    "FALU_OPS",
    "FUNARY_OPS",
]

#: Integer ALU operations (each retires as one INT operation).
ALU_OPS = frozenset(
    {"add", "sub", "mul", "div", "mod", "and", "or", "xor", "shl", "shr",
     "lt", "le", "eq", "ne", "gt", "ge", "min", "max"}
)

#: Floating-point binary operations (each retires as one FLOAT operation).
FALU_OPS = frozenset({"fadd", "fsub", "fmul", "fdiv", "fmin", "fmax"})

#: Floating-point unary operations.
FUNARY_OPS = frozenset({"fneg", "fabs", "fsqrt", "fexp", "flog"})


@dataclass(frozen=True, slots=True)
class Instr:
    """Base class for instructions."""


@dataclass(frozen=True, slots=True)
class Const(Instr):
    """``dst <- value`` (materialise an immediate; costs one INT op)."""

    dst: int
    value: float | int


@dataclass(frozen=True, slots=True)
class Mov(Instr):
    """``dst <- src`` (register copy; costs one INT op)."""

    dst: int
    src: int


@dataclass(frozen=True, slots=True)
class Alu(Instr):
    """``dst <- a <op> b`` over integers; ``op`` in :data:`ALU_OPS`."""

    op: str
    dst: int
    a: int
    b: int


@dataclass(frozen=True, slots=True)
class AluImm(Instr):
    """``dst <- a <op> imm`` over integers."""

    op: str
    dst: int
    a: int
    imm: int


@dataclass(frozen=True, slots=True)
class FAlu(Instr):
    """``dst <- a <op> b`` over 64-bit floats; ``op`` in :data:`FALU_OPS`."""

    op: str
    dst: int
    a: int
    b: int


@dataclass(frozen=True, slots=True)
class FUnary(Instr):
    """``dst <- op(a)`` over floats; ``op`` in :data:`FUNARY_OPS`."""

    op: str
    dst: int
    a: int


@dataclass(frozen=True, slots=True)
class Load(Instr):
    """``dst <- memory[base + offset .. +size]`` (emits a MemRead)."""

    dst: int
    base: int
    offset: int
    size: int
    is_float: bool = False


@dataclass(frozen=True, slots=True)
class Store(Instr):
    """``memory[base + offset .. +size] <- src`` (emits a MemWrite)."""

    src: int
    base: int
    offset: int
    size: int
    is_float: bool = False


@dataclass(frozen=True, slots=True)
class Jump(Instr):
    """Unconditional jump to a label (resolved to an instruction index)."""

    target: int


@dataclass(frozen=True, slots=True)
class BranchIf(Instr):
    """Jump to ``target`` when register ``cond`` is truthy.

    ``site`` identifies the static branch site for the branch predictor.
    """

    cond: int
    target: int
    site: int


@dataclass(frozen=True, slots=True)
class Call(Instr):
    """Call ``func`` with register arguments; result lands in ``dst``."""

    func: str
    args: Tuple[int, ...] = ()
    dst: Optional[int] = None


@dataclass(frozen=True, slots=True)
class Ret(Instr):
    """Return to the caller, optionally passing the value in ``src``."""

    src: Optional[int] = None


@dataclass(frozen=True, slots=True)
class Syscall(Instr):
    """Invoke an opaque system call.

    The VM cannot see inside a syscall (mirroring Valgrind's limitation);
    the instruction carries the observable input/output byte counts.
    """

    name: str
    input_bytes: int = 0
    output_bytes: int = 0


@dataclass(frozen=True, slots=True)
class Halt(Instr):
    """Stop the machine (only meaningful in the entry function)."""
