"""Flat byte-addressable memory with a bump allocator for the mini-VM.

The VM exposes a 64-bit sparse address space backed by 4 KiB pages that are
materialised on first touch, mirroring how a real process only maps what it
uses.  A simple bump allocator hands out disjoint regions so toy programs and
tests can create buffers without a full malloc implementation.
"""

from __future__ import annotations

import struct
from typing import Dict

from repro.vm.errors import MemoryFault

__all__ = ["FlatMemory", "PAGE_SIZE"]

PAGE_SIZE = 4096
_F64 = struct.Struct("<d")


class FlatMemory:
    """Sparse byte memory: pages materialise on first write.

    Reads of never-written addresses fault unless ``strict`` is False, in
    which case they return zero bytes (useful for programs that read
    uninitialised padding, as real binaries occasionally do).
    """

    def __init__(self, *, strict: bool = True, heap_base: int = 0x1000_0000):
        self._pages: Dict[int, bytearray] = {}
        self._strict = strict
        self._brk = heap_base

    # -- allocation ----------------------------------------------------

    def alloc(self, size: int, align: int = 8) -> int:
        """Reserve ``size`` bytes and return the base address."""
        if size < 0:
            raise ValueError("allocation size must be non-negative")
        if align <= 0 or align & (align - 1):
            raise ValueError("alignment must be a positive power of two")
        base = (self._brk + align - 1) & ~(align - 1)
        self._brk = base + size
        return base

    @property
    def brk(self) -> int:
        """Current top of the bump allocator."""
        return self._brk

    # -- raw byte access -----------------------------------------------

    def _page_for_write(self, page_no: int) -> bytearray:
        page = self._pages.get(page_no)
        if page is None:
            page = bytearray(PAGE_SIZE)
            self._pages[page_no] = page
        return page

    def write_bytes(self, addr: int, data: bytes) -> None:
        if addr < 0:
            raise MemoryFault(addr, len(data))
        offset = addr % PAGE_SIZE
        page_no = addr // PAGE_SIZE
        pos = 0
        remaining = len(data)
        while remaining:
            page = self._page_for_write(page_no)
            chunk = min(PAGE_SIZE - offset, remaining)
            page[offset : offset + chunk] = data[pos : pos + chunk]
            pos += chunk
            remaining -= chunk
            page_no += 1
            offset = 0

    def read_bytes(self, addr: int, size: int) -> bytes:
        if addr < 0:
            raise MemoryFault(addr, size)
        out = bytearray(size)
        offset = addr % PAGE_SIZE
        page_no = addr // PAGE_SIZE
        pos = 0
        remaining = size
        while remaining:
            chunk = min(PAGE_SIZE - offset, remaining)
            page = self._pages.get(page_no)
            if page is None:
                if self._strict:
                    raise MemoryFault(page_no * PAGE_SIZE + offset, chunk)
                # non-strict: leave zeros
            else:
                out[pos : pos + chunk] = page[offset : offset + chunk]
            pos += chunk
            remaining -= chunk
            page_no += 1
            offset = 0
        return bytes(out)

    # -- typed access ---------------------------------------------------

    def write_int(self, addr: int, value: int, size: int) -> None:
        self.write_bytes(addr, int(value).to_bytes(size, "little", signed=True))

    def read_int(self, addr: int, size: int) -> int:
        return int.from_bytes(self.read_bytes(addr, size), "little", signed=True)

    def write_float(self, addr: int, value: float) -> None:
        self.write_bytes(addr, _F64.pack(value))

    def read_float(self, addr: int) -> float:
        return _F64.unpack(self.read_bytes(addr, 8))[0]

    # -- introspection ---------------------------------------------------

    @property
    def mapped_bytes(self) -> int:
        """Total bytes of materialised pages (the VM's memory footprint)."""
        return len(self._pages) * PAGE_SIZE
