"""repro: reproduction of "Platform-independent analysis of function-level
communication in workloads" (Nilakantan & Hempstead, IISWC 2013) -- the
Sigil communication profiler, its Callgrind-equivalent substrate, a
synthetic PARSEC-like workload suite, and the paper's post-processing
analyses (CDFG partitioning, data re-use, critical paths).

Quick start::

    from repro import profile_workload, SigilConfig
    run = profile_workload("blackscholes", "simsmall",
                           config=SigilConfig(reuse_mode=True, event_mode=True))
    print(run.sigil.total_time, len(run.sigil.tree))
"""

from repro.core.config import SigilConfig
from repro.core.profiler import SigilProfile, SigilProfiler
from repro.harness import (
    ProfiledRun,
    line_reuse_run,
    native_run,
    native_seconds,
    profile_workload,
)
from repro.telemetry import Manifest, NullTelemetry, Telemetry
from repro.workloads import ALL_NAMES, PARSEC_NAMES, InputSize, get_workload

__version__ = "1.2.0"

__all__ = [
    "SigilConfig",
    "SigilProfile",
    "SigilProfiler",
    "ProfiledRun",
    "line_reuse_run",
    "native_run",
    "native_seconds",
    "profile_workload",
    "Manifest",
    "NullTelemetry",
    "Telemetry",
    "ALL_NAMES",
    "PARSEC_NAMES",
    "InputSize",
    "get_workload",
    "__version__",
]
